//! The distributed exchange: framed byte-stream transports behind the
//! [`FragmentPort`] contract.
//!
//! Two carriers ship the same wire format (see [`ewh_core::encode_frame`]):
//! an in-memory loopback pipe and real TCP sockets on localhost. Both are
//! driven by dedicated I/O threads so the engine's pool tasks never block
//! on a socket — a task that would overrun the link's credit window parks
//! exactly like it would on a full in-process queue.
//!
//! ## Credit-based flow control
//!
//! A [`BoundedQueue`] bounds *resident tuples*; a byte stream has no shared
//! counter to bound against. The `CreditGate` reproduces the queue's
//! admission rule on the producer side: every sent delivery charges its
//! tuple weight against the window, and the consumer returns that weight as
//! a `CREDIT` frame on a dedicated back-channel once the delivery is popped.
//! `outstanding` therefore counts tuples in flight end to end — in the
//! writer's buffer, on the wire, and in the consumer-side staging queue —
//! so [`FragmentPort::used_tuples`] keeps feeding the migration
//! coordinator's backlog heuristics unchanged. The admission rule is
//! bit-for-bit the queue's (`w > 0 && outstanding > 0 && outstanding + w >
//! capacity` bounces; an oversized delivery is admitted alone), so swapping
//! a local queue for a remote one cannot introduce a new deadlock.
//!
//! ## Ordering and failure
//!
//! Frames are written by one thread and decoded in arrival order by one
//! thread: the link is FIFO, which is the same no-reordering assumption the
//! in-process queues give the epoch-fencing protocol. A link that dies
//! mid-stream (I/O error, corrupt or truncated frame) trips the run's
//! [`TransportFailure`]: the gate releases every parked producer (their
//! subsequent pushes are discarded — the run is doomed), an in-band
//! [`Delivery::Abort`] is injected into the staging queue so a parked
//! consumer wakes and unwinds, and the engine's watcher task cancels the
//! query cooperatively. Nothing panics on a bad byte.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ewh_core::{encode_frame, ColumnBatch, Frame, FrameDecoder, Key, Rel, TUPLE_BYTES};

use super::exchange::Exchange;
use super::port::{FragmentPort, PortPop};
use super::queue::{delivery_weight, BoundedQueue, Delivery, MigratedRegion, RegionBatch};
use super::runtime::{WakeSet, Waker};
use super::spill::SpillRun;

// The transport's tag space within the frame codec's opaque `kind` byte.
const FRAME_BATCH: u8 = 1;
const FRAME_SEAL_R1: u8 = 2;
const FRAME_SEAL_ALL: u8 = 3;
const FRAME_MIGRATE: u8 = 4;
const FRAME_ADOPT: u8 = 5;
const FRAME_FINISH: u8 = 6;
const FRAME_ABORT: u8 = 7;
const FRAME_CREDIT: u8 = 8;
const FRAME_CLOSE: u8 = 9;
const FRAME_XBATCH: u8 = 10;

/// What one mapper→reducer link looks like to the migration coordinator:
/// the Bala-Join tradeoff in two numbers. Shipping a region's sealed state
/// across a thin link can cost more than the backlog it relieves; the
/// coordinator charges this profile instead of a flat per-tuple factor
/// when links are configured (see `coordinator.rs`).
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Sustained link throughput. Tuples are [`TUPLE_BYTES`] on the wire.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way latency charged once per migration handshake.
    pub rtt_secs: f64,
}

impl LinkProfile {
    /// Seconds to ship `tuples` of sealed state over this link.
    pub fn ship_secs(&self, tuples: u64) -> f64 {
        self.rtt_secs + tuples as f64 * TUPLE_BYTES as f64 / self.bandwidth_bytes_per_sec.max(1.0)
    }
}

/// Which byte carrier a remote queue rides on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// An in-memory pipe: the full framed protocol (encode, credit flow,
    /// incremental decode) without kernel sockets.
    Loopback,
    /// Real TCP sockets on localhost, one connection per direction.
    Tcp,
}

/// Per-run transport selection and fault knobs (part of `EngineConfig`).
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    pub kind: TransportKind,
    /// Pace the data writer to this many bytes per second — an asymmetric-
    /// link emulator for benchmarks. `None`: unthrottled.
    pub throttle_bytes_per_sec: Option<u64>,
    /// Fault injection for tests: flip a length byte in the Nth data frame
    /// (0-based) so the decoder sees a corrupt stream mid-run.
    pub corrupt_frame: Option<u64>,
}

impl TransportConfig {
    pub fn loopback() -> Self {
        TransportConfig {
            kind: TransportKind::Loopback,
            throttle_bytes_per_sec: None,
            corrupt_frame: None,
        }
    }

    pub fn tcp() -> Self {
        TransportConfig {
            kind: TransportKind::Tcp,
            throttle_bytes_per_sec: None,
            corrupt_frame: None,
        }
    }
}

/// One run's shared transport failure latch. I/O threads own clones (they
/// are `'static`); the engine's watcher task parks on it and converts a
/// trip into a cooperative query cancellation.
pub struct TransportFailure {
    failed: AtomicBool,
    released: AtomicBool,
    reason: Mutex<Option<String>>,
    wake: WakeSet,
}

impl TransportFailure {
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Self> {
        Arc::new(TransportFailure {
            failed: AtomicBool::new(false),
            released: AtomicBool::new(false),
            reason: Mutex::new(None),
            wake: WakeSet::new(),
        })
    }

    /// Records the first failure; returns whether this call was it.
    pub(crate) fn trip(&self, why: String) -> bool {
        let first = !self.failed.swap(true, Ordering::AcqRel);
        if first {
            *self.reason.lock().expect("failure reason poisoned") = Some(why);
        }
        self.wake.wake_all();
        first
    }

    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    pub fn reason(&self) -> Option<String> {
        self.reason.lock().expect("failure reason poisoned").clone()
    }

    /// End-of-run release: wakes the watcher so it can exit without a trip.
    pub(crate) fn release(&self) {
        self.released.store(true, Ordering::Release);
        self.wake.wake_all();
    }

    pub(crate) fn released(&self) -> bool {
        self.released.load(Ordering::Acquire)
    }

    /// Parks `waker` until a trip or the end-of-run release. `false`: an
    /// event already happened (or raced the registration) — re-poll now.
    pub(crate) fn park(&self, waker: &Waker) -> bool {
        let generation = self.wake.generation();
        if self.failed() || self.released() {
            return false;
        }
        self.wake.register(waker, generation)
    }
}

// ---------------------------------------------------------------------------
// Byte carriers
// ---------------------------------------------------------------------------

struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    read_closed: bool,
}

struct PipeShared {
    state: Mutex<PipeState>,
    ready: Condvar,
}

/// The write half of an in-memory byte pipe. Dropping it is EOF for the
/// reader — exactly a socket's close semantics, which is what the clean
/// shutdown path relies on.
struct PipeWriter(Arc<PipeShared>);

struct PipeReader(Arc<PipeShared>);

fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(PipeShared {
        state: Mutex::new(PipeState {
            buf: VecDeque::new(),
            write_closed: false,
            read_closed: false,
        }),
        ready: Condvar::new(),
    });
    (PipeWriter(shared.clone()), PipeReader(shared))
}

impl Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().expect("pipe poisoned");
        if st.read_closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "reader gone"));
        }
        st.buf.extend(bytes);
        drop(st);
        self.0.ready.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.state.lock().expect("pipe poisoned").write_closed = true;
        self.0.ready.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().expect("pipe poisoned");
        loop {
            if !st.buf.is_empty() {
                let n = out.len().min(st.buf.len());
                for (i, b) in st.buf.drain(..n).enumerate() {
                    out[i] = b;
                }
                return Ok(n);
            }
            if st.write_closed {
                return Ok(0);
            }
            st = self.0.ready.wait(st).expect("pipe poisoned");
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.0.state.lock().expect("pipe poisoned").read_closed = true;
        self.0.ready.notify_all();
    }
}

/// The four stream endpoints of one remote queue: a data plane
/// (producer → consumer) and a credit back-channel (consumer → producer).
struct Wire {
    data_out: Box<dyn Write + Send>,
    data_in: Box<dyn Read + Send>,
    credit_out: Box<dyn Write + Send>,
    credit_in: Box<dyn Read + Send>,
}

fn make_wire(kind: TransportKind) -> io::Result<Wire> {
    match kind {
        TransportKind::Loopback => {
            let (dw, dr) = pipe();
            let (cw, cr) = pipe();
            Ok(Wire {
                data_out: Box::new(dw),
                data_in: Box::new(dr),
                credit_out: Box::new(cw),
                credit_in: Box::new(cr),
            })
        }
        TransportKind::Tcp => {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            // Sequential connect/accept keeps the pairing deterministic.
            let data_out = TcpStream::connect(addr)?;
            let (data_in, _) = listener.accept()?;
            let credit_out = TcpStream::connect(addr)?;
            let (credit_in, _) = listener.accept()?;
            for s in [&data_out, &data_in, &credit_out, &credit_in] {
                s.set_nodelay(true)?;
            }
            Ok(Wire {
                data_out: Box::new(data_out),
                data_in: Box::new(data_in),
                credit_out: Box::new(credit_out),
                credit_in: Box::new(credit_in),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Credit gate
// ---------------------------------------------------------------------------

struct GateInner {
    outstanding: usize,
    waiters: Vec<Waker>,
    failed: bool,
}

/// Producer-side tuple window mirroring [`BoundedQueue`]'s admission rule.
/// `outstanding` is charged on send and returned by `CREDIT` frames, so it
/// counts tuples in flight end to end.
pub(crate) struct CreditGate {
    capacity: usize,
    inner: Mutex<GateInner>,
    freed: Condvar,
    blocked_nanos: AtomicU64,
}

impl CreditGate {
    pub(crate) fn new(capacity_tuples: usize) -> Arc<Self> {
        Arc::new(CreditGate {
            capacity: capacity_tuples.max(1),
            inner: Mutex::new(GateInner {
                outstanding: 0,
                waiters: Vec::new(),
                failed: false,
            }),
            freed: Condvar::new(),
            blocked_nanos: AtomicU64::new(0),
        })
    }

    /// The queue's admission rule verbatim: bounce only when the window is
    /// non-empty and `w` would overrun it (an oversized delivery is
    /// admitted alone). A failed gate admits everything — the caller
    /// discards. A bounced call with a waker registers it under the gate
    /// lock, so the freeing credit can never race past unobserved.
    fn try_acquire(&self, w: usize, waker: Option<&Waker>) -> bool {
        let mut g = self.inner.lock().expect("credit gate poisoned");
        if g.failed {
            return true;
        }
        if w > 0 && g.outstanding > 0 && g.outstanding + w > self.capacity {
            if let Some(waker) = waker {
                waker.register_in(&mut g.waiters);
            }
            return false;
        }
        g.outstanding += w;
        true
    }

    /// Blocking acquire for client threads outside the pool. Returns
    /// `false` when the gate failed while (or before) waiting.
    fn acquire_blocking(&self, w: usize) -> bool {
        let mut g = self.inner.lock().expect("credit gate poisoned");
        let start = Instant::now();
        while !g.failed && w > 0 && g.outstanding > 0 && g.outstanding + w > self.capacity {
            g = self.freed.wait(g).expect("credit gate poisoned");
        }
        if start.elapsed() > Duration::ZERO {
            self.blocked_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if g.failed {
            return false;
        }
        g.outstanding += w;
        true
    }

    /// Unbounded admission: weight accounted, bound bypassed (control
    /// traffic and reducer→reducer forwarding must never deadlock).
    fn acquire_unbounded(&self, w: usize) {
        let mut g = self.inner.lock().expect("credit gate poisoned");
        if !g.failed {
            g.outstanding += w;
        }
    }

    /// Returns `w` tuples of window and wakes every parked producer (the
    /// queue wakes all producers per pop for the same reason: a big freed
    /// weight may admit several small waiters).
    fn credit(&self, w: usize) {
        let waiters = {
            let mut g = self.inner.lock().expect("credit gate poisoned");
            g.outstanding = g.outstanding.saturating_sub(w);
            std::mem::take(&mut g.waiters)
        };
        self.freed.notify_all();
        for waker in waiters {
            waker.wake();
        }
    }

    /// Poisons the gate: every parked producer wakes and every subsequent
    /// acquire is admitted (and discarded by the caller).
    fn fail(&self) {
        let waiters = {
            let mut g = self.inner.lock().expect("credit gate poisoned");
            g.failed = true;
            std::mem::take(&mut g.waiters)
        };
        self.freed.notify_all();
        for waker in waiters {
            waker.wake();
        }
    }

    fn outstanding(&self) -> usize {
        self.inner.lock().expect("credit gate poisoned").outstanding
    }

    fn blocked_nanos(&self) -> u64 {
        self.blocked_nanos.load(Ordering::Relaxed)
    }
}

/// Paces a writer thread to a target byte rate (the benchmark's link
/// throttle). Sleeps before each write so sustained throughput converges
/// to the rate from above.
struct Pacer {
    rate: Option<f64>,
    start: Instant,
    sent: u64,
}

impl Pacer {
    fn new(bytes_per_sec: Option<u64>) -> Self {
        Pacer {
            rate: bytes_per_sec.map(|r| (r.max(1)) as f64),
            start: Instant::now(),
            sent: 0,
        }
    }

    fn pace(&mut self, bytes: usize) {
        let Some(rate) = self.rate else { return };
        self.sent += bytes as u64;
        let due = self.sent as f64 / rate;
        let elapsed = self.start.elapsed().as_secs_f64();
        if due > elapsed {
            std::thread::sleep(Duration::from_secs_f64(due - elapsed));
        }
    }
}

// ---------------------------------------------------------------------------
// Delivery codec
// ---------------------------------------------------------------------------

fn rel_code(rel: Rel) -> u64 {
    match rel {
        Rel::R1 => 0,
        Rel::R2 => 1,
    }
}

fn code_rel(code: u64) -> Result<Rel, String> {
    match code {
        0 => Ok(Rel::R1),
        1 => Ok(Rel::R2),
        other => Err(format!("unknown relation code {other}")),
    }
}

fn put_run(out: &mut Vec<u8>, run: &SpillRun) {
    out.extend_from_slice(&run.tuples().to_le_bytes());
    let kr = run.key_range();
    out.extend_from_slice(&kr.lo.to_le_bytes());
    out.extend_from_slice(&kr.hi.to_le_bytes());
    // Spill paths are engine-generated ASCII under the temp dir; a truly
    // non-UTF-8 OS path would round-trip lossily, which only matters if the
    // adopting process can't open it — and it would fail loudly there.
    let path = run.path().to_string_lossy();
    out.extend_from_slice(&(path.len() as u32).to_le_bytes());
    out.extend_from_slice(path.as_bytes());
}

/// Serializes the non-tuple state of a [`MigratedRegion`]: tallies, seal
/// flag, and the *descriptors* of its spilled runs. The spill files
/// themselves stay on the shared per-query spill directory — they travel
/// by path, not by value, exactly like an in-process migration.
fn encode_region_meta(state: &MigratedRegion) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(state.sealed as u8);
    out.extend_from_slice(&state.input.to_le_bytes());
    out.extend_from_slice(&state.output.to_le_bytes());
    out.extend_from_slice(&state.checksum.to_le_bytes());
    out.extend_from_slice(&(state.spilled_build.len() as u32).to_le_bytes());
    for run in &state.spilled_build {
        put_run(&mut out, run);
    }
    out.extend_from_slice(&(state.spilled_pending.len() as u32).to_le_bytes());
    for run in &state.spilled_pending {
        put_run(&mut out, run);
    }
    out
}

/// A bounds-checked cursor over a meta sidecar. Every length is validated
/// before the slice, so corrupt metadata surfaces as `Err`, never a panic.
struct Meta<'a>(&'a [u8]);

impl Meta<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.0.len() < n {
            return Err(format!(
                "meta sidecar truncated: wanted {n} bytes, {} left",
                self.0.len()
            ));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn run(&mut self) -> Result<SpillRun, String> {
        let tuples = self.u64()?;
        let lo = self.i64()?;
        let hi = self.i64()?;
        let path_len = self.u32()? as usize;
        let path = String::from_utf8_lossy(self.take(path_len)?).into_owned();
        Ok(SpillRun::from_parts(
            path.into(),
            tuples,
            ewh_core::KeyRange { lo, hi },
        ))
    }

    fn runs(&mut self) -> Result<Vec<SpillRun>, String> {
        let n = self.u32()? as usize;
        // The count is attacker-controlled: cap the pre-allocation and let
        // `take` catch a lying count on the first truncated run.
        let mut runs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            runs.push(self.run()?);
        }
        Ok(runs)
    }
}

fn split_batch(batch: &ColumnBatch, at: usize) -> (ColumnBatch, ColumnBatch) {
    let keys = batch.keys();
    let payloads = batch.payloads();
    (
        ColumnBatch::from_columns(keys[..at].to_vec(), payloads[..at].to_vec()),
        ColumnBatch::from_columns(keys[at..].to_vec(), payloads[at..].to_vec()),
    )
}

/// Appends one delivery as a wire frame. Tuple-carrying deliveries ship
/// their columns as the frame's two slabs (two memcpys on a little-endian
/// target); `Adopt` concatenates build + pending and records the split
/// point in header word `b`.
pub(crate) fn encode_delivery(out: &mut Vec<u8>, d: &Delivery) {
    let empty = ColumnBatch::new();
    match d {
        Delivery::Batch(rb) => encode_frame(
            out,
            FRAME_BATCH,
            rel_code(rb.rel) << 32 | rb.region as u64,
            rb.epoch,
            &[],
            &rb.tuples,
        ),
        Delivery::SealR1 => encode_frame(out, FRAME_SEAL_R1, 0, 0, &[], &empty),
        Delivery::SealAll => encode_frame(out, FRAME_SEAL_ALL, 0, 0, &[], &empty),
        Delivery::Migrate { region } => {
            encode_frame(out, FRAME_MIGRATE, *region as u64, 0, &[], &empty)
        }
        Delivery::Adopt { region, state } => {
            let meta = encode_region_meta(state);
            let mut keys: Vec<Key> = Vec::with_capacity(state.build.len() + state.pending.len());
            keys.extend_from_slice(state.build.keys());
            keys.extend_from_slice(state.pending.keys());
            let mut payloads: Vec<u64> = Vec::with_capacity(keys.capacity());
            payloads.extend_from_slice(state.build.payloads());
            payloads.extend_from_slice(state.pending.payloads());
            let combined = ColumnBatch::from_columns(keys, payloads);
            encode_frame(
                out,
                FRAME_ADOPT,
                *region as u64,
                state.build.len() as u64,
                &meta,
                &combined,
            );
        }
        Delivery::Finish => encode_frame(out, FRAME_FINISH, 0, 0, &[], &empty),
        Delivery::Abort => encode_frame(out, FRAME_ABORT, 0, 0, &[], &empty),
    }
}

/// Reassembles a delivery from a decoded frame.
pub(crate) fn decode_delivery(frame: Frame) -> Result<Delivery, String> {
    match frame.kind {
        FRAME_BATCH => Ok(Delivery::Batch(RegionBatch {
            region: (frame.a & 0xFFFF_FFFF) as u32,
            rel: code_rel(frame.a >> 32)?,
            epoch: frame.b,
            tuples: frame.batch,
        })),
        FRAME_SEAL_R1 => Ok(Delivery::SealR1),
        FRAME_SEAL_ALL => Ok(Delivery::SealAll),
        FRAME_MIGRATE => Ok(Delivery::Migrate {
            region: frame.a as u32,
        }),
        FRAME_ADOPT => {
            let build_len = frame.b as usize;
            if build_len > frame.batch.len() {
                return Err(format!(
                    "adopt split {build_len} beyond batch of {}",
                    frame.batch.len()
                ));
            }
            let (build, pending) = split_batch(&frame.batch, build_len);
            let mut meta = Meta(&frame.extra);
            let sealed = meta.u8()? != 0;
            let input = meta.u64()?;
            let output = meta.u64()?;
            let checksum = meta.u64()?;
            let spilled_build = meta.runs()?;
            let spilled_pending = meta.runs()?;
            Ok(Delivery::Adopt {
                region: frame.a as u32,
                state: Box::new(MigratedRegion {
                    build,
                    pending,
                    spilled_build,
                    spilled_pending,
                    sealed,
                    input,
                    output,
                    checksum,
                }),
            })
        }
        FRAME_FINISH => Ok(Delivery::Finish),
        FRAME_ABORT => Ok(Delivery::Abort),
        other => Err(format!("unexpected frame kind {other} on a data link")),
    }
}

// ---------------------------------------------------------------------------
// RemoteQueue
// ---------------------------------------------------------------------------

/// Trips the shared failure latch and unblocks both ends of the link:
/// producers through the poisoned gate, the consumer through an in-band
/// `Abort` (the reducer's native unwind path).
fn trip_link(failure: &TransportFailure, gate: &CreditGate, staging: &BoundedQueue, why: String) {
    failure.trip(why);
    // Unconditionally, even when another link already tripped the shared
    // latch: each failing link must unblock its *own* consumer in-band. The
    // watcher's broadcast `Abort` cannot reach this reducer — it would have
    // to cross this link's wire, which is exactly what just died. Both
    // calls are idempotent; a duplicate `Abort` is harmless (the reducer
    // unwinds on the first).
    gate.fail();
    staging.push_unbounded(Delivery::Abort);
}

/// A mapper→reducer delivery channel carried over a framed byte stream,
/// speaking the exact [`FragmentPort`] contract of [`BoundedQueue`].
///
/// Producer side: `try_push*` charges the `CreditGate` and hands the
/// encoded frame to the data-writer thread. Consumer side: the data-reader
/// thread decodes arriving frames into a staging [`BoundedQueue`] (whose
/// waker plumbing parks/wakes the reducer unchanged); every pop returns the
/// delivery's weight as a `CREDIT` frame on the back-channel.
pub struct RemoteQueue {
    staging: Arc<BoundedQueue>,
    gate: Arc<CreditGate>,
    failure: Arc<TransportFailure>,
    data_tx: Mutex<Option<mpsc::Sender<Vec<u8>>>>,
    credit_tx: Mutex<Option<mpsc::Sender<u64>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    wire_bytes: Arc<AtomicU64>,
    note_nanos: AtomicU64,
}

impl RemoteQueue {
    /// Builds the link and spawns its four I/O threads (data writer/reader,
    /// credit writer/reader). `failure` is shared by every link of a run.
    pub fn spawn(
        cfg: &TransportConfig,
        capacity_tuples: usize,
        failure: Arc<TransportFailure>,
    ) -> io::Result<Arc<RemoteQueue>> {
        let wire = make_wire(cfg.kind)?;
        let staging = Arc::new(BoundedQueue::new(capacity_tuples));
        let gate = CreditGate::new(capacity_tuples);
        let wire_bytes = Arc::new(AtomicU64::new(0));
        let (data_tx, data_rx) = mpsc::channel::<Vec<u8>>();
        let (credit_tx, credit_rx) = mpsc::channel::<u64>();
        let mut threads = Vec::with_capacity(4);

        // Data writer: paces (optional throttle), injects the optional test
        // fault, and writes frames in FIFO order. Exits when the queue is
        // dropped (channel closed), which closes the stream → reader EOF.
        {
            let mut out = wire.data_out;
            let mut pacer = Pacer::new(cfg.throttle_bytes_per_sec);
            let corrupt = cfg.corrupt_frame;
            let (failure, gate, staging) = (failure.clone(), gate.clone(), staging.clone());
            let wire_bytes = wire_bytes.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ewh-xport-data-tx".into())
                    .spawn(move || {
                        let mut n = 0u64;
                        while let Ok(mut buf) = data_rx.recv() {
                            if corrupt == Some(n) && buf.len() > 21 {
                                buf[21] ^= 0xFF; // inflate the extra_len field
                            }
                            n += 1;
                            pacer.pace(buf.len());
                            if let Err(e) = out.write_all(&buf) {
                                trip_link(&failure, &gate, &staging, format!("data write: {e}"));
                                return;
                            }
                            wire_bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
                        }
                    })?,
            );
        }

        // Data reader: incremental decode into the staging queue. A clean
        // EOF on a frame boundary is the normal teardown; everything else
        // trips the failure latch.
        {
            let mut src = wire.data_in;
            let (failure, gate, staging) = (failure.clone(), gate.clone(), staging.clone());
            threads.push(
                std::thread::Builder::new()
                    .name("ewh-xport-data-rx".into())
                    .spawn(move || {
                        let mut dec = FrameDecoder::new();
                        let mut buf = vec![0u8; 64 * 1024];
                        loop {
                            match src.read(&mut buf) {
                                Ok(0) => {
                                    if dec.pending_bytes() > 0 {
                                        trip_link(
                                            &failure,
                                            &gate,
                                            &staging,
                                            "stream truncated mid-frame".into(),
                                        );
                                    }
                                    return;
                                }
                                Ok(n) => {
                                    dec.feed(&buf[..n]);
                                    loop {
                                        match dec.next_frame() {
                                            Ok(Some(frame)) => match decode_delivery(frame) {
                                                Ok(d) => staging.push_unbounded(d),
                                                Err(why) => {
                                                    trip_link(&failure, &gate, &staging, why);
                                                    return;
                                                }
                                            },
                                            Ok(None) => break,
                                            Err(e) => {
                                                trip_link(&failure, &gate, &staging, e.to_string());
                                                return;
                                            }
                                        }
                                    }
                                }
                                Err(e) => {
                                    trip_link(&failure, &gate, &staging, format!("data read: {e}"));
                                    return;
                                }
                            }
                        }
                    })?,
            );
        }

        // Credit writer: coalesces pending credits into one frame per wake.
        {
            let mut out = wire.credit_out;
            let (failure, gate, staging) = (failure.clone(), gate.clone(), staging.clone());
            threads.push(
                std::thread::Builder::new()
                    .name("ewh-xport-credit-tx".into())
                    .spawn(move || {
                        let empty = ColumnBatch::new();
                        let mut buf = Vec::with_capacity(64);
                        while let Ok(mut w) = credit_rx.recv() {
                            while let Ok(more) = credit_rx.try_recv() {
                                w += more;
                            }
                            buf.clear();
                            encode_frame(&mut buf, FRAME_CREDIT, w, 0, &[], &empty);
                            if let Err(e) = out.write_all(&buf) {
                                trip_link(&failure, &gate, &staging, format!("credit write: {e}"));
                                return;
                            }
                        }
                    })?,
            );
        }

        // Credit reader: returns window to the gate, waking parked pushers.
        {
            let mut src = wire.credit_in;
            let (failure, gate, staging) = (failure.clone(), gate.clone(), staging.clone());
            threads.push(
                std::thread::Builder::new()
                    .name("ewh-xport-credit-rx".into())
                    .spawn(move || {
                        let mut dec = FrameDecoder::new();
                        let mut buf = vec![0u8; 4096];
                        loop {
                            match src.read(&mut buf) {
                                Ok(0) => {
                                    if dec.pending_bytes() > 0 {
                                        trip_link(
                                            &failure,
                                            &gate,
                                            &staging,
                                            "credit stream truncated".into(),
                                        );
                                    }
                                    return;
                                }
                                Ok(n) => {
                                    dec.feed(&buf[..n]);
                                    loop {
                                        match dec.next_frame() {
                                            Ok(Some(f)) if f.kind == FRAME_CREDIT => {
                                                gate.credit(f.a as usize);
                                            }
                                            Ok(Some(f)) => {
                                                trip_link(
                                                    &failure,
                                                    &gate,
                                                    &staging,
                                                    format!(
                                                        "unexpected kind {} on credit link",
                                                        f.kind
                                                    ),
                                                );
                                                return;
                                            }
                                            Ok(None) => break,
                                            Err(e) => {
                                                trip_link(&failure, &gate, &staging, e.to_string());
                                                return;
                                            }
                                        }
                                    }
                                }
                                Err(e) => {
                                    trip_link(
                                        &failure,
                                        &gate,
                                        &staging,
                                        format!("credit read: {e}"),
                                    );
                                    return;
                                }
                            }
                        }
                    })?,
            );
        }

        Ok(Arc::new(RemoteQueue {
            staging,
            gate,
            failure,
            data_tx: Mutex::new(Some(data_tx)),
            credit_tx: Mutex::new(Some(credit_tx)),
            threads: Mutex::new(threads),
            wire_bytes,
            note_nanos: AtomicU64::new(0),
        }))
    }

    /// Bytes the data writer put on the wire (frame headers included).
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes.load(Ordering::Relaxed)
    }

    pub fn failure(&self) -> &Arc<TransportFailure> {
        &self.failure
    }

    fn send(&self, item: Delivery) {
        let mut buf = Vec::new();
        encode_delivery(&mut buf, &item);
        if let Some(tx) = self.data_tx.lock().expect("data tx poisoned").as_ref() {
            // A send after the writer died parks the frame in a dead
            // channel; the failure latch is already tripped.
            let _ = tx.send(buf);
        }
    }

    fn credit_for(&self, item: &Delivery) {
        let w = delivery_weight(item);
        if w > 0 {
            if let Some(tx) = self.credit_tx.lock().expect("credit tx poisoned").as_ref() {
                let _ = tx.send(w as u64);
            }
        }
    }
}

impl Drop for RemoteQueue {
    fn drop(&mut self) {
        // Closing the channels ends the writer threads, which drop their
        // stream ends, which EOFs the reader threads: a full quiesce with
        // no sentinel traffic.
        self.data_tx.lock().expect("data tx poisoned").take();
        self.credit_tx.lock().expect("credit tx poisoned").take();
        for handle in self.threads.lock().expect("threads poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

impl FragmentPort for RemoteQueue {
    type Item = Delivery;

    fn push(&self, item: Delivery) {
        let w = delivery_weight(&item);
        if self.gate.acquire_blocking(w) {
            self.send(item);
        }
    }

    fn try_push(&self, item: Delivery) -> Result<(), Delivery> {
        if self.failure.failed() {
            return Ok(()); // discarded: the run is unwinding
        }
        if self.gate.try_acquire(delivery_weight(&item), None) {
            self.send(item);
            Ok(())
        } else {
            Err(item)
        }
    }

    fn try_push_or_park(&self, item: Delivery, waker: &Waker) -> Result<(), Delivery> {
        if self.failure.failed() {
            return Ok(());
        }
        if self.gate.try_acquire(delivery_weight(&item), Some(waker)) {
            self.send(item);
            Ok(())
        } else {
            Err(item)
        }
    }

    fn push_unbounded(&self, item: Delivery) {
        self.gate.acquire_unbounded(delivery_weight(&item));
        self.send(item);
    }

    fn try_pop(&self) -> PortPop<Delivery> {
        match BoundedQueue::try_pop(&self.staging) {
            Some(item) => {
                self.credit_for(&item);
                PortPop::Item(item)
            }
            None => PortPop::Empty,
        }
    }

    fn try_pop_or_park(&self, waker: &Waker) -> PortPop<Delivery> {
        match BoundedQueue::try_pop_or_park(&self.staging, waker) {
            Some(item) => {
                self.credit_for(&item);
                PortPop::Item(item)
            }
            None => PortPop::Empty,
        }
    }

    /// No-op: lifecycle is in-band, as on the local queue.
    fn close(&self) {}

    /// Consumer teardown: producers must never block again.
    fn abandon(&self) {
        self.gate.fail();
    }

    /// Window charged but not yet credited back: tuples in the writer's
    /// buffer, on the wire, and staged on the consumer side — the remote
    /// generalization of queue depth the coordinator's backlog heuristics
    /// expect.
    fn used_tuples(&self) -> usize {
        self.gate.outstanding()
    }

    fn note_blocked(&self, nanos: u64) {
        self.note_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn blocked_secs(&self) -> f64 {
        (self.note_nanos.load(Ordering::Relaxed) + self.gate.blocked_nanos()) as f64 * 1e-9
    }
}

// ---------------------------------------------------------------------------
// Cross-process exchange
// ---------------------------------------------------------------------------

/// The producing half of a cross-process [`Exchange`]: batches go out as
/// frames on one TCP connection, credits come back on the same socket.
/// Used by the distributed benchmark's parent process to stream a relation
/// into a worker process.
pub struct RemoteExchangeSender {
    out: Mutex<TcpStream>,
    gate: Arc<CreditGate>,
    failure: Arc<TransportFailure>,
    reader: Option<JoinHandle<()>>,
    scratch: Mutex<Vec<u8>>,
}

impl RemoteExchangeSender {
    /// Connects to a [`RemoteExchangeReceiver`]. `window_tuples` bounds the
    /// tuples in flight toward the receiver (its staging exchange adds its
    /// own bound downstream).
    pub fn connect(addr: &str, window_tuples: usize) -> io::Result<Self> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        let rd = sock.try_clone()?;
        let gate = CreditGate::new(window_tuples);
        let failure = TransportFailure::new();
        let reader = {
            let gate = gate.clone();
            let failure = failure.clone();
            let mut src = rd;
            std::thread::Builder::new()
                .name("ewh-xchg-credit-rx".into())
                .spawn(move || {
                    let mut dec = FrameDecoder::new();
                    let mut buf = vec![0u8; 4096];
                    loop {
                        match src.read(&mut buf) {
                            Ok(0) => return,
                            Ok(n) => {
                                dec.feed(&buf[..n]);
                                loop {
                                    match dec.next_frame() {
                                        Ok(Some(f)) if f.kind == FRAME_CREDIT => {
                                            gate.credit(f.a as usize);
                                        }
                                        Ok(Some(f)) => {
                                            failure.trip(format!(
                                                "unexpected kind {} from receiver",
                                                f.kind
                                            ));
                                            gate.fail();
                                            return;
                                        }
                                        Ok(None) => break,
                                        Err(e) => {
                                            failure.trip(e.to_string());
                                            gate.fail();
                                            return;
                                        }
                                    }
                                }
                            }
                            Err(_) => return,
                        }
                    }
                })?
        };
        Ok(RemoteExchangeSender {
            out: Mutex::new(sock),
            gate,
            failure,
            reader: Some(reader),
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Blocking bounded push: waits for window, then writes one frame.
    pub fn push(&self, batch: &ColumnBatch) -> io::Result<()> {
        if !self.gate.acquire_blocking(batch.len()) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                self.failure
                    .reason()
                    .unwrap_or_else(|| "link failed".into()),
            ));
        }
        let mut buf = self.scratch.lock().expect("scratch poisoned");
        buf.clear();
        encode_frame(&mut buf, FRAME_XBATCH, 0, 0, &[], batch);
        self.out
            .lock()
            .expect("sender socket poisoned")
            .write_all(&buf)
    }

    /// End of stream: sends `CLOSE`, half-closes the socket, and reaps the
    /// credit reader.
    pub fn finish(mut self) -> io::Result<()> {
        {
            let mut buf = self.scratch.lock().expect("scratch poisoned");
            buf.clear();
            encode_frame(&mut buf, FRAME_CLOSE, 0, 0, &[], &ColumnBatch::new());
            let mut out = self.out.lock().expect("sender socket poisoned");
            out.write_all(&buf)?;
            out.shutdown(std::net::Shutdown::Write)?;
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        Ok(())
    }
}

impl Drop for RemoteExchangeSender {
    fn drop(&mut self) {
        // An un-finished sender (error path) still closes the socket by
        // dropping it; just don't leave the reader thread dangling.
        if let Some(reader) = self.reader.take() {
            let _ = self
                .out
                .lock()
                .map(|s| s.shutdown(std::net::Shutdown::Both));
            let _ = reader.join();
        }
    }
}

/// The consuming half: accepts one sender connection, decodes arriving
/// batches into a bounded [`Exchange`] (blocking when the downstream
/// engine lags — which stops the reads, which stops the credits, which
/// parks the sender: end-to-end backpressure), and credits each batch as
/// it is staged.
pub struct RemoteExchangeReceiver {
    exchange: Arc<Exchange>,
    failure: Arc<TransportFailure>,
    thread: Option<JoinHandle<()>>,
}

impl RemoteExchangeReceiver {
    pub fn accept(listener: &TcpListener, capacity_tuples: usize) -> io::Result<Self> {
        let (sock, _) = listener.accept()?;
        sock.set_nodelay(true)?;
        let mut wr = sock.try_clone()?;
        let exchange = Arc::new(Exchange::new(capacity_tuples));
        let failure = TransportFailure::new();
        let thread = {
            let exchange = exchange.clone();
            let failure = failure.clone();
            let mut src = sock;
            std::thread::Builder::new()
                .name("ewh-xchg-data-rx".into())
                .spawn(move || {
                    let mut dec = FrameDecoder::new();
                    let mut buf = vec![0u8; 64 * 1024];
                    let mut credit = Vec::with_capacity(64);
                    let empty = ColumnBatch::new();
                    let fail = |failure: &TransportFailure, exchange: &Exchange, why: String| {
                        failure.trip(why);
                        // Close (not abandon): the downstream engine sees a
                        // normal end of stream and terminates; the caller
                        // must check `failed()` before trusting the result.
                        exchange.close();
                    };
                    loop {
                        match src.read(&mut buf) {
                            Ok(0) => {
                                if dec.pending_bytes() > 0 {
                                    fail(&failure, &exchange, "truncated mid-frame".into());
                                } else {
                                    fail(
                                        &failure,
                                        &exchange,
                                        "sender vanished without CLOSE".into(),
                                    );
                                }
                                return;
                            }
                            Ok(n) => {
                                dec.feed(&buf[..n]);
                                loop {
                                    match dec.next_frame() {
                                        Ok(Some(f)) if f.kind == FRAME_XBATCH => {
                                            let w = f.batch.len() as u64;
                                            exchange.push(f.batch);
                                            if w > 0 {
                                                credit.clear();
                                                encode_frame(
                                                    &mut credit,
                                                    FRAME_CREDIT,
                                                    w,
                                                    0,
                                                    &[],
                                                    &empty,
                                                );
                                                if wr.write_all(&credit).is_err() {
                                                    fail(
                                                        &failure,
                                                        &exchange,
                                                        "credit write failed".into(),
                                                    );
                                                    return;
                                                }
                                            }
                                        }
                                        Ok(Some(f)) if f.kind == FRAME_CLOSE => {
                                            exchange.close();
                                            return;
                                        }
                                        Ok(Some(f)) => {
                                            fail(
                                                &failure,
                                                &exchange,
                                                format!("unexpected kind {}", f.kind),
                                            );
                                            return;
                                        }
                                        Ok(None) => break,
                                        Err(e) => {
                                            fail(&failure, &exchange, e.to_string());
                                            return;
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                fail(&failure, &exchange, format!("read: {e}"));
                                return;
                            }
                        }
                    }
                })?
        };
        Ok(RemoteExchangeReceiver {
            exchange,
            failure,
            thread: Some(thread),
        })
    }

    /// The staging exchange the engine consumes (`Source::Exchange`).
    pub fn exchange(&self) -> &Arc<Exchange> {
        &self.exchange
    }

    /// Joins the reader; `Err` carries the failure reason if the stream
    /// did not end with a clean `CLOSE`.
    pub fn join(mut self) -> Result<(), String> {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        match self.failure.reason() {
            Some(why) => Err(why),
            None => Ok(()),
        }
    }
}

impl Drop for RemoteExchangeReceiver {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn cols(n: usize) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(n);
        for i in 0..n {
            b.push(i as Key - 3, (i as u64) << 7);
        }
        b
    }

    fn batch_delivery(region: u32, n: usize) -> Delivery {
        Delivery::Batch(RegionBatch {
            region,
            rel: Rel::R2,
            epoch: region as u64 + 9,
            tuples: cols(n),
        })
    }

    fn drain_until<T>(timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
        let start = Instant::now();
        loop {
            if let Some(v) = f() {
                return v;
            }
            assert!(start.elapsed() < timeout, "timed out");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn adopt_round_trips_through_the_codec() {
        let state = MigratedRegion {
            build: cols(5),
            pending: cols(3),
            spilled_build: vec![SpillRun::from_parts(
                PathBuf::from("/tmp/ewh-test/run-0"),
                1000,
                ewh_core::KeyRange { lo: -5, hi: 900 },
            )],
            spilled_pending: vec![],
            sealed: true,
            input: 77,
            output: 12,
            checksum: 0xDEAD_BEEF,
        };
        let d = Delivery::Adopt {
            region: 4,
            state: Box::new(state),
        };
        let mut wire = Vec::new();
        encode_delivery(&mut wire, &d);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let frame = dec.next_frame().expect("valid").expect("complete");
        let Delivery::Adopt { region, state } = decode_delivery(frame).expect("decodes") else {
            panic!("wrong variant");
        };
        assert_eq!(region, 4);
        assert_eq!(state.build.keys(), cols(5).keys());
        assert_eq!(state.pending.payloads(), cols(3).payloads());
        assert!(state.sealed);
        assert_eq!(
            (state.input, state.output, state.checksum),
            (77, 12, 0xDEAD_BEEF)
        );
        assert_eq!(state.spilled_build.len(), 1);
        let run = &state.spilled_build[0];
        assert_eq!(run.tuples(), 1000);
        assert_eq!(run.key_range().lo, -5);
        assert_eq!(run.path(), PathBuf::from("/tmp/ewh-test/run-0").as_path());
    }

    #[test]
    fn every_control_delivery_survives_the_wire() {
        let deliveries = [
            Delivery::SealR1,
            Delivery::SealAll,
            Delivery::Migrate { region: 7 },
            Delivery::Finish,
            Delivery::Abort,
        ];
        let mut wire = Vec::new();
        for d in &deliveries {
            encode_delivery(&mut wire, d);
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut got = Vec::new();
        while let Some(f) = dec.next_frame().expect("valid") {
            got.push(decode_delivery(f).expect("decodes"));
        }
        assert_eq!(got.len(), 5);
        assert!(matches!(got[0], Delivery::SealR1));
        assert!(matches!(got[1], Delivery::SealAll));
        assert!(matches!(got[2], Delivery::Migrate { region: 7 }));
        assert!(matches!(got[3], Delivery::Finish));
        assert!(matches!(got[4], Delivery::Abort));
    }

    #[test]
    fn the_credit_gate_mirrors_the_queue_admission_rule() {
        let gate = CreditGate::new(10);
        assert!(gate.try_acquire(8, None));
        assert!(!gate.try_acquire(3, None), "8 + 3 > 10 bounces");
        assert!(gate.try_acquire(2, None), "8 + 2 == 10 admitted");
        gate.credit(10);
        assert!(gate.try_acquire(100, None), "oversized admitted alone");
        assert_eq!(gate.outstanding(), 100);
        gate.fail();
        assert!(gate.try_acquire(100, None), "failed gate admits everything");
    }

    fn round_trip_over(kind: TransportKind) {
        let failure = TransportFailure::new();
        let q = RemoteQueue::spawn(
            &TransportConfig {
                kind,
                throttle_bytes_per_sec: None,
                corrupt_frame: None,
            },
            1 << 20,
            failure.clone(),
        )
        .expect("link");
        let port: &super::super::port::DeliveryPort = &*q;
        for region in 0..32u32 {
            assert!(port.try_push(batch_delivery(region, 100)).is_ok());
        }
        port.push_unbounded(Delivery::SealAll);
        for region in 0..32u32 {
            let d = drain_until(Duration::from_secs(10), || match port.try_pop() {
                PortPop::Item(d) => Some(d),
                _ => None,
            });
            let Delivery::Batch(rb) = d else {
                panic!("expected a batch")
            };
            assert_eq!(rb.region, region, "FIFO order preserved");
            assert_eq!(rb.epoch, region as u64 + 9);
            assert_eq!(rb.tuples.keys(), cols(100).keys());
            assert_eq!(rb.tuples.payloads(), cols(100).payloads());
        }
        let d = drain_until(Duration::from_secs(10), || match port.try_pop() {
            PortPop::Item(d) => Some(d),
            _ => None,
        });
        assert!(matches!(d, Delivery::SealAll));
        // Credits drain the window back to zero.
        drain_until(Duration::from_secs(10), || {
            (port.used_tuples() == 0).then_some(())
        });
        assert!(!failure.failed());
        assert!(q.wire_bytes() > 32 * 100 * TUPLE_BYTES);
    }

    #[test]
    fn loopback_link_round_trips_in_order() {
        round_trip_over(TransportKind::Loopback);
    }

    #[test]
    fn tcp_link_round_trips_in_order() {
        round_trip_over(TransportKind::Tcp);
    }

    #[test]
    fn the_window_bounces_like_a_full_queue() {
        let failure = TransportFailure::new();
        let q = RemoteQueue::spawn(&TransportConfig::loopback(), 100, failure).expect("link");
        let port: &super::super::port::DeliveryPort = &*q;
        assert!(port.try_push(batch_delivery(0, 80)).is_ok());
        let bounced = port.try_push(batch_delivery(1, 50));
        assert!(bounced.is_err(), "window overrun hands the delivery back");
        // Popping the staged batch returns credit and re-admits.
        drain_until(Duration::from_secs(10), || match port.try_pop() {
            PortPop::Item(d) => Some(d),
            _ => None,
        });
        drain_until(Duration::from_secs(10), || {
            port.try_push(batch_delivery(1, 50)).is_ok().then_some(())
        });
    }

    #[test]
    fn a_corrupt_frame_trips_the_failure_latch_and_aborts_in_band() {
        let failure = TransportFailure::new();
        let q = RemoteQueue::spawn(
            &TransportConfig {
                kind: TransportKind::Loopback,
                throttle_bytes_per_sec: None,
                corrupt_frame: Some(0),
            },
            1 << 20,
            failure.clone(),
        )
        .expect("link");
        let port: &super::super::port::DeliveryPort = &*q;
        assert!(port.try_push(batch_delivery(0, 64)).is_ok());
        let d = drain_until(Duration::from_secs(10), || match port.try_pop() {
            PortPop::Item(d) => Some(d),
            _ => None,
        });
        assert!(
            matches!(d, Delivery::Abort),
            "corruption surfaces as an in-band abort, got {d:?}"
        );
        assert!(failure.failed());
        assert!(failure.reason().is_some());
        // Producers are never blocked again; pushes discard quietly.
        assert!(port.try_push(batch_delivery(1, 1 << 19)).is_ok());
        assert!(port.try_push(batch_delivery(2, 1 << 19)).is_ok());
    }

    #[test]
    fn the_remote_exchange_streams_batches_cross_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let receiver = RemoteExchangeReceiver::accept_after_connect(&listener, 4096, &addr);
        let (receiver, sender) = receiver;
        let exchange = receiver.exchange().clone();
        let producer = std::thread::spawn(move || {
            for i in 0..64 {
                sender.push(&cols(100 + i)).expect("push");
            }
            sender.finish().expect("finish");
        });
        let mut got = 0usize;
        let mut batches = 0usize;
        while let Some(b) = exchange.pop() {
            got += b.len();
            batches += 1;
        }
        producer.join().expect("producer");
        assert_eq!(batches, 64);
        assert_eq!(got, (0..64).map(|i| 100 + i).sum::<usize>());
        receiver.join().expect("clean close");
    }

    impl RemoteExchangeReceiver {
        /// Test helper: connect and accept without a second thread.
        fn accept_after_connect(
            listener: &TcpListener,
            capacity: usize,
            addr: &str,
        ) -> (RemoteExchangeReceiver, RemoteExchangeSender) {
            let addr = addr.to_string();
            let sender = std::thread::spawn(move || {
                RemoteExchangeSender::connect(&addr, 2048).expect("connect")
            });
            let receiver = RemoteExchangeReceiver::accept(listener, capacity).expect("accept");
            (receiver, sender.join().expect("sender thread"))
        }
    }

    #[test]
    fn link_profiles_price_the_bala_join_tradeoff() {
        let fast = LinkProfile {
            bandwidth_bytes_per_sec: 1e9,
            rtt_secs: 0.0001,
        };
        let slow = LinkProfile {
            bandwidth_bytes_per_sec: 1e6,
            rtt_secs: 0.05,
        };
        let tuples = 100_000;
        assert!(slow.ship_secs(tuples) > 100.0 * fast.ship_secs(tuples));
    }
}
