//! # The morsel-driven pipelined execution engine
//!
//! Replaces the two global barriers of the batch path (full shuffle
//! materialization, then joins) with a pipeline of mapper and reducer tasks
//! connected by bounded queues. Tasks are *schedulable units* on the
//! shared worker-pool [`EngineRuntime`] (the `runtime` module), not OS
//! threads: a fixed pool multiplexes the tasks of every concurrently
//! admitted query, and a task that would block — a full queue, an empty
//! exchange — parks itself instead of a worker:
//!
//! * **Mappers** claim fixed-size [`Morsel`]s of either relation from a
//!   shared [`MorselPlan`] and batch-route them through the scheme's
//!   [`Router`] ([`ewh_core::RouteBatch`]), pushing per-region fragments to
//!   the owning reducer's bounded queue (backpressure: a full queue blocks
//!   the mapper). Ownership is resolved per fragment through the shared
//!   epoch-versioned [`ewh_core::RoutingTable`] — never baked into the plan.
//! * **Reducers** build each owned region's sorted `R1` state incrementally
//!   from the arriving fragments. When the last `R1` morsel is routed, the
//!   finishing mapper broadcasts a seal; reducers merge their sorted runs
//!   and from then on sweep `R2` probe chunks immediately, freeing each
//!   chunk after its sweep. The full probe side is never resident.
//! * A **migration coordinator** (`coordinator` module) watches reducer
//!   heartbeats on the shared [`ProgressBoard`] after the `R1` seal and
//!   reassigns regions from backlogged reducers to idle ones at run time —
//!   the paper's §V adaptive skew handling made real inside the engine. Its
//!   behavior is driven by the same [`AdaptiveConfig`] as the discrete-event
//!   simulation in [`crate::simulate_adaptive`], so predicted and realized
//!   reassignment counts can be compared.
//!
//! Peak resident memory is tracked by a cluster-wide [`MemGauge`]; a
//! completed run reports it alongside per-reducer busy/idle time,
//! backpressure stalls, routed-morsel counts, and migration tallies.
//!
//! ## Composable operators
//!
//! The engine's inputs are [`Source`]s, not bare slices: a base-relation
//! scan (morselized through the [`MorselPlan`]) or a bounded [`Exchange`]
//! fed by an upstream operator's probe output. With an exchange probe side,
//! mappers drain the scan plan first (the build relation) and then pull
//! intermediate batches as the upstream produces them; the upstream
//! operator's quiescence — it closes the exchange after its own `Finish` —
//! is what drives the downstream `SealAll`. A [`StageSink`] on the
//! producing side ships every swept chunk downstream and feeds the
//! [`OnlineStats`] reservoir, so the next operator's partitioning scheme is
//! built from statistics collected *during* the upstream probe, never from
//! a second pass over a materialized intermediate. The plan-level driver
//! lives in [`crate::run_plan`].

mod board;
mod coordinator;
mod exchange;
mod mapper;
mod morsel;
mod pool;
mod port;
mod queue;
mod reducer;
mod runtime;
mod spill;
mod transport;

pub use board::ProgressBoard;
pub use exchange::{
    AbandonOnDrop, CloseOnDrop, Exchange, IntermediateStats, OnlineStats, PopWait, StageSink,
    TryPop,
};
pub use morsel::{Claim, MemGauge, Morsel, MorselPlan, Source};
pub use pool::BatchPool;
pub use port::{BatchPort, DeliveryPort, FragmentPort, PortPop};
pub use queue::{BoundedQueue, Delivery, MigratedRegion, RegionBatch};
pub use reducer::{merge_sorted_runs, merge_sorted_runs_pairwise, RegionResult};
pub use runtime::{
    CancelToken, EngineRuntime, Poll, QueryTicket, RuntimeConfig, RuntimeMetrics, RuntimeScope,
    TaskCx, TaskGroup, WakeSet, Waker,
};
pub use spill::{SpillConfig, SpillContext, SpillRun};
pub use transport::{
    LinkProfile, RemoteExchangeReceiver, RemoteExchangeSender, RemoteQueue, TransportConfig,
    TransportFailure, TransportKind,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ewh_core::{ColumnBatch, JoinCondition, Router, RoutingTable, Tuple};

use crate::adaptive::AdaptiveConfig;
use crate::local_join::{KeyFrom, OutputWork};

use coordinator::{CoordinatorShared, CoordinatorStep, CoordinatorTask, MigrationTally};
use mapper::{broadcast, MapperShared, MapperTask, SealState};
use reducer::{ReducerOutcome, ReducerShared, ReducerStep, ReducerTask};

/// Fault injection: slow one reducer's absorption path down by a fixed cost
/// per tuple, emulating a straggling node. Used by benchmarks and tests to
/// demonstrate (and assert) that run-time region migration recovers the
/// makespan a straggler would otherwise dominate.
#[derive(Clone, Copy, Debug)]
pub struct Straggler {
    /// Index of the reducer task to slow down.
    pub reducer: usize,
    /// Injected processing cost per absorbed tuple.
    pub nanos_per_tuple: u64,
}

/// Engine tuning knobs (derived from `OperatorConfig` by the operator
/// layer).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Mapper task count.
    pub mappers: usize,
    /// Reducer task count.
    pub reducers: usize,
    /// Bounded queue capacity, in tuples, per reducer.
    pub queue_tuples: usize,
    /// Probe tuples buffered per region before a sweep.
    pub probe_chunk: usize,
    pub seed: u64,
    pub work: OutputWork,
    /// Run-time migration knobs (shared with the adaptive simulation).
    /// `adaptive.reassign` selects the coordinated protocol; with it off the
    /// engine runs the legacy fixed-placement seal protocol.
    pub adaptive: AdaptiveConfig,
    /// Optional injected straggler (see [`Straggler`]).
    pub straggler: Option<Straggler>,
    /// Carry mapper→reducer deliveries over a framed byte-stream transport
    /// (loopback pipes or localhost TCP) instead of in-process queues:
    /// the full distributed data plane — encode, credit flow control,
    /// incremental decode — behind the same [`FragmentPort`] contract.
    /// `None`: plain in-process [`BoundedQueue`]s.
    pub transport: Option<TransportConfig>,
}

impl EngineConfig {
    /// Splits a query's task budget into mapper and reducer tasks (half
    /// each, at least one of both). These are *schedulable tasks* on the
    /// shared [`EngineRuntime`], not OS threads: the pool multiplexes
    /// them, so a task budget above the pool size just means finer
    /// interleaving, never host oversubscription (which is why the old
    /// per-stage thread-splitting this replaced is gone).
    pub fn for_tasks(tasks: usize, morsel_tuples: usize, seed: u64) -> Self {
        let tasks = tasks.max(1);
        let reducers = (tasks / 2).max(1);
        let mappers = (tasks - reducers).max(1);
        EngineConfig {
            mappers,
            reducers,
            queue_tuples: 4 * morsel_tuples.max(1),
            // A fraction of the morsel size: a region fed by several morsels
            // flushes (and frees) probe chunks mid-stream instead of only at
            // the final seal. The floor keeps per-sweep overhead amortized.
            probe_chunk: (morsel_tuples / 4).max(64),
            seed,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        }
    }
}

/// Everything a completed (or cancelled) engine run reports.
#[derive(Clone, Debug, Default)]
pub struct EngineOutcome {
    /// Input tuples received per region (replication included).
    pub per_region_input: Vec<u64>,
    pub per_region_output: Vec<u64>,
    pub per_region_checksum: Vec<u64>,
    /// Tuples pushed mapper → reducer (== the batch path's network volume
    /// for deterministic routers). Migration shipping is accounted
    /// separately in [`EngineOutcome::migration_tuples`].
    pub network_tuples: u64,
    /// High-water mark of resident routed tuples across the cluster.
    pub peak_resident_tuples: u64,
    pub morsels_routed: u64,
    /// Total time mappers spent blocked on full reducer queues.
    pub backpressure_secs: f64,
    /// Total time mappers spent routing: the batched router scans plus the
    /// write-combining scatter that builds every per-region fragment.
    pub route_secs: f64,
    /// Total time reducers spent merging sorted runs (seal, migration
    /// adoption and finish merges).
    pub merge_secs: f64,
    /// Total time reducers spent sweeping probe chunks against build state.
    pub sweep_secs: f64,
    /// Per-reducer time spent processing vs. waiting.
    pub busy_secs: Vec<f64>,
    pub idle_secs: Vec<f64>,
    pub wall_secs: f64,
    /// Regions reassigned between reducers at run time.
    pub regions_migrated: u64,
    /// Tuples of sealed state shipped reducer → reducer by migrations.
    pub migration_tuples: u64,
    /// Summed migration handshake latency (decision → adoption installed).
    pub migration_secs: f64,
    /// Final routing-table epoch (== `regions_migrated`; separate so tests
    /// can cross-check the table against the coordinator's tally).
    pub routing_epoch: u64,
    /// Bytes written to spill files by this run (out-of-core execution
    /// under a memory budget; zero without budget pressure).
    pub spill_bytes: u64,
    /// Wall time spent writing spill runs.
    pub spill_secs: f64,
    /// Wall time spent reading spill runs back for replay.
    pub reload_secs: f64,
    /// Bytes the transport's data writers put on the wire (frame headers
    /// included); zero for in-process queues.
    pub wire_bytes: u64,
    /// True when the run was cancelled. Per-region join tallies are zeroed
    /// (reducer state is discarded), but morsel/network counters and the
    /// migration fields above are preserved: they describe real work done —
    /// and real mutations to the shared routing table, which a resumed run
    /// over the same table inherits — before the cancellation landed.
    pub cancelled: bool,
}

impl EngineOutcome {
    pub fn output_total(&self) -> u64 {
        self.per_region_output.iter().sum()
    }

    pub fn checksum(&self) -> u64 {
        self.per_region_checksum.iter().fold(0, |acc, &c| acc ^ c)
    }
}

/// The inputs and wiring of one pipelined operator execution — what flows
/// in (two [`Source`]s), how it routes (router + routing table + morsel
/// plan) and where the output goes (an optional downstream [`StageSink`]).
/// Grouping these keeps [`run_pipelined_io`] callable from both the
/// one-shot operator layer and the chained plan executor.
#[derive(Clone, Copy)]
pub struct EngineIo<'a> {
    /// Build side. Must be a scan today: a streamed build side would need
    /// bushy plans (left-deep chains always build on a base relation).
    pub r1: Source<'a>,
    /// Probe side: scan, or the streamed output of an upstream operator.
    pub r2: Source<'a>,
    pub router: &'a Router,
    pub cond: &'a JoinCondition,
    /// Region → reducer ownership (see [`run_pipelined`]).
    pub table: &'a RoutingTable,
    /// Morsel decomposition of the *scan* sources (an exchange side
    /// contributes zero morsels — its batches arrive pre-cut).
    pub plan: &'a MorselPlan,
    /// Ship probe output downstream (chained plans).
    pub sink: Option<StageSink<'a>>,
    /// Which side's key emitted intermediates carry.
    pub key_from: KeyFrom,
    /// Share a cluster-wide gauge across a whole plan so
    /// [`EngineOutcome::peak_resident_tuples`] reports the plan-global
    /// high-water mark (exchange buffers included). `None`: private gauge.
    pub gauge: Option<&'a MemGauge>,
    pub cancel: Option<&'a CancelToken>,
    /// Spill trigger, in tuples: reducers shed state to disk while the
    /// gauge sits above this. `None` disables out-of-core execution.
    pub budget_tuples: Option<u64>,
    /// Per-query spill file manager; required whenever `budget_tuples` is
    /// set (and harmlessly ignored without it).
    pub spill: Option<&'a SpillContext>,
    /// Per-reducer inbound [`LinkProfile`]s for the migration
    /// coordinator's communication-aware move-cost gate. `None`: the flat
    /// per-tuple gate.
    pub links: Option<&'a [LinkProfile]>,
}

/// Runs one pipelined join execution over two in-memory relations — the
/// classic operator entry point, forwarding to [`run_pipelined_io`].
///
/// `table` publishes region → reducer ownership (initial values
/// `< cfg.reducers`; the operator layer seeds it with LPT over estimated
/// region weights) and is mutated by the migration coordinator when
/// `cfg.adaptive.reassign` is on. `cancel` is checked by mappers between
/// morsels; a cancelled run discards all reducer state and reports
/// [`EngineOutcome::cancelled`] — the unconsumed remainder of `plan` stays
/// claimable by a follow-up run (see the adaptive fallback).
#[allow(clippy::too_many_arguments)] // an execution plan, not a builder
pub fn run_pipelined(
    rt: &EngineRuntime,
    r1: &[Tuple],
    r2: &[Tuple],
    router: &Router,
    cond: &JoinCondition,
    table: &RoutingTable,
    plan: &MorselPlan,
    cfg: &EngineConfig,
    cancel: Option<&CancelToken>,
) -> EngineOutcome {
    // One transpose per run; every routed fragment, region sort, and sweep
    // downstream works on the columnar layout.
    let r1 = ColumnBatch::from_tuples(r1);
    let r2 = ColumnBatch::from_tuples(r2);
    run_pipelined_io(
        rt,
        EngineIo {
            r1: Source::Scan(&r1),
            r2: Source::Scan(&r2),
            router,
            cond,
            table,
            plan,
            sink: None,
            key_from: KeyFrom::Probe,
            gauge: None,
            cancel,
            budget_tuples: None,
            spill: None,
            links: None,
        },
        cfg,
    )
}

/// Runs one pipelined operator over generalized [`Source`]s — the entry
/// point of the composable plan executor (see [`EngineIo`]).
///
/// All mapper/reducer/coordinator work executes as tasks on `rt`'s shared
/// worker pool; the calling thread only orchestrates (it waits for the
/// mapper task group, decides whether the seal chain broke, and blocks
/// until the run's tasks complete). Many engine runs — whole concurrent
/// queries, or the stages of one plan — share a single runtime without
/// spawning anything.
pub fn run_pipelined_io(rt: &EngineRuntime, io: EngineIo<'_>, cfg: &EngineConfig) -> EngineOutcome {
    assert!(
        io.r1.exchange().is_none(),
        "streamed build sides are unsupported: left-deep chains build on base relations"
    );
    let r1 = io.r1.scan_cols();
    let r2 = io.r2.scan_cols();
    let (router, cond, table, plan) = (io.router, io.cond, io.table, io.plan);
    let n_regions = table.n_regions();
    let reducers = cfg.reducers.max(1);
    debug_assert!(table.snapshot().iter().all(|&q| (q as usize) < reducers));

    let start = Instant::now();
    // With a transport configured every delivery queue becomes a framed
    // byte-stream link (same FragmentPort contract, credit-based window in
    // place of the shared counter). One failure latch is shared by every
    // link of the run; a watcher task below converts a trip into a
    // cooperative cancellation.
    let transport_failure = cfg.transport.as_ref().map(|_| TransportFailure::new());
    let mut remote_queues: Vec<Arc<RemoteQueue>> = Vec::new();
    let queues: Vec<Arc<port::DeliveryPort>> = match (&cfg.transport, &transport_failure) {
        (Some(tcfg), Some(latch)) => (0..reducers)
            .map(|_| {
                let q = RemoteQueue::spawn(tcfg, cfg.queue_tuples, latch.clone())
                    .expect("transport link setup failed");
                remote_queues.push(q.clone());
                q as Arc<port::DeliveryPort>
            })
            .collect(),
        _ => (0..reducers)
            .map(|_| Arc::new(BoundedQueue::new(cfg.queue_tuples)) as Arc<port::DeliveryPort>)
            .collect(),
    };
    let local_gauge = MemGauge::default();
    let gauge = io.gauge.unwrap_or(&local_gauge);
    let board = ProgressBoard::new(reducers, n_regions);
    let default_cancel = CancelToken::new();
    let cancel = io.cancel.unwrap_or(&default_cancel);
    // Seed the seal countdowns from the *unconsumed* remainder: a resumed
    // plan (cancelled earlier run) only routes what is left, so counting
    // the full plan would leave the seals unreachable.
    let r1_left = plan.r1_unconsumed();
    let seal = SealState::new(r1_left, plan.unconsumed(), io.r2.exchange());
    let network_tuples = AtomicU64::new(0);
    let morsels_routed = AtomicU64::new(0);
    let route_nanos = AtomicU64::new(0);
    let merge_nanos = AtomicU64::new(0);
    let sweep_nanos = AtomicU64::new(0);
    let in_flight = AtomicU64::new(0);
    let adoptions = AtomicU64::new(0);
    let migration_tuples = AtomicU64::new(0);
    let mappers_done = AtomicBool::new(false);
    let abort = AtomicBool::new(false);
    // Wakes the parked coordinator on the events its termination check
    // watches; also bumped by the orchestrator after the stores below.
    let quiesce = WakeSet::new();
    // The coordinated protocol (heartbeats + run-time migration + Finish
    // termination) is selected by the adaptive config; with reassignment
    // off the engine runs the legacy SealAll-terminated protocol untouched.
    let coordinated = cfg.adaptive.reassign;

    // An empty relation — or a portion fully claimed before this run —
    // never triggers a mapper-side seal; pre-seal here. (SealAll further
    // requires a drained exchange when the probe side streams.)
    if r1_left == 0 {
        broadcast(&queues, || Delivery::SealR1);
    }
    seal.maybe_seal_all(&queues);

    let mapper_shared = MapperShared {
        plan,
        r1,
        r2,
        router,
        table,
        queues: &queues,
        seal: &seal,
        gauge,
        network_tuples: &network_tuples,
        morsels_routed: &morsels_routed,
        in_flight: &in_flight,
        route_nanos: &route_nanos,
        seed: cfg.seed,
        cancel,
    };
    let reducer_shared = ReducerShared {
        queues: &queues,
        table,
        board: &board,
        gauge,
        cond,
        work: cfg.work,
        probe_chunk: cfg.probe_chunk.max(1),
        in_flight: &in_flight,
        adoptions: &adoptions,
        migration_tuples: &migration_tuples,
        coordinated,
        straggler: cfg.straggler,
        sink: io.sink,
        key_from: io.key_from,
        budget_tuples: io.budget_tuples,
        spill: io.spill,
        cancel,
        quiesce: &quiesce,
        mappers_done: &mappers_done,
        merge_nanos: &merge_nanos,
        sweep_nanos: &sweep_nanos,
    };
    let coordinator_shared = CoordinatorShared {
        queues: &queues,
        table,
        board: &board,
        adaptive: &cfg.adaptive,
        links: io.links,
        r1_remaining: &seal.r1_remaining,
        mappers_done: &mappers_done,
        abort: &abort,
        in_flight: &in_flight,
        adoptions: &adoptions,
        quiesce: &quiesce,
    };

    // Spill counters are cumulative on the (possibly plan-shared) context;
    // report this run's contribution as a delta. Concurrent stages over one
    // context produce overlapping deltas — the plan driver overrides its
    // merged totals from the context's absolute counters.
    let spill_start = io
        .spill
        .map(|ctx| (ctx.spill_bytes(), ctx.spill_secs(), ctx.reload_secs()));

    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); reducers];
    for (region, &q) in table.snapshot().iter().enumerate() {
        owned[q as usize].push(region as u32);
    }

    // Result slots the pool tasks write into as they finish (the runtime's
    // scoped tasks have no join handles — the scope itself is the join).
    let outcome_slots: Vec<Mutex<Option<ReducerOutcome>>> =
        (0..reducers).map(|_| Mutex::new(None)).collect();
    let tally_slot: Mutex<Option<MigrationTally>> = Mutex::new(None);

    rt.scope(|s| {
        // The transport's I/O threads are 'static and cannot borrow the
        // run's cancel token; this scoped watcher bridges the gap. It
        // parks on the failure latch and, on a trip, cancels the query,
        // flags the abort (so a coordinator waiting out `in_flight` —
        // which discarded deliveries can never drain — exits), and aborts
        // every reducer in-band. The orchestrator releases the latch after
        // the coordinator so a clean run parks here exactly once.
        if let Some(latch) = &transport_failure {
            let latch = latch.clone();
            let queues = &queues;
            let abort = &abort;
            let quiesce = &quiesce;
            s.spawn(move |cx| {
                if latch.failed() {
                    cancel.cancel();
                    abort.store(true, Ordering::Release);
                    broadcast(queues, || Delivery::Abort);
                    quiesce.wake_all();
                    return Poll::Ready;
                }
                if latch.released() {
                    return Poll::Ready;
                }
                if latch.park(cx.waker()) {
                    Poll::Pending
                } else {
                    Poll::Yielded
                }
            });
        }
        for (q, regions) in owned.iter().enumerate() {
            let mut task = ReducerTask::new(&reducer_shared, q, regions);
            let slot = &outcome_slots[q];
            s.spawn(move |cx| match task.poll(cx) {
                ReducerStep::Working => Poll::Yielded,
                ReducerStep::Parked => Poll::Pending,
                ReducerStep::Done(outcome) => {
                    *slot.lock().expect("outcome slot poisoned") = Some(outcome);
                    Poll::Ready
                }
            });
        }
        let coordinator_group = s.group();
        if coordinated {
            let mut task = CoordinatorTask::new(&coordinator_shared);
            let slot = &tally_slot;
            s.spawn_in(&coordinator_group, move |cx| match task.poll(cx) {
                CoordinatorStep::Idle => Poll::Pending,
                CoordinatorStep::Busy => Poll::Yielded,
                CoordinatorStep::Done(tally) => {
                    *slot.lock().expect("tally slot poisoned") = Some(tally);
                    Poll::Ready
                }
            });
        }
        let mapper_group = s.group();
        for _ in 0..cfg.mappers.max(1) {
            let mut task = MapperTask::new(&mapper_shared);
            s.spawn_in(&mapper_group, move |cx| task.poll(cx));
        }
        mapper_group.wait();
        // If the mappers finished without sealing (cancellation), the seal
        // chain is broken: stop the coordinator and abort the reducers
        // explicitly. Control messages bypass queue bounds, so this cannot
        // deadlock. Otherwise hand termination to the coordinator (Finish
        // at quiescence) or, uncoordinated, to the SealAll chain. Either
        // way, wake the parked coordinator to observe the store.
        let broken = !seal.sealed_all();
        if broken {
            abort.store(true, Ordering::Release);
        } else {
            mappers_done.store(true, Ordering::Release);
        }
        quiesce.wake_all();
        coordinator_group.wait();
        // A clean run parks the transport watcher forever; let it exit.
        // (A trip that races this release still aborted the reducers via
        // the in-band injection on the failed link.)
        if let Some(latch) = &transport_failure {
            latch.release();
        }
        if broken {
            broadcast(&queues, || Delivery::Abort);
        }
        // Scope exit blocks until the reducer tasks complete.
    });
    let outcomes: Vec<ReducerOutcome> = outcome_slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("outcome slot poisoned")
                .expect("reducer task finished without an outcome")
        })
        .collect();
    let tally = tally_slot
        .into_inner()
        .expect("tally slot poisoned")
        .unwrap_or_default();

    let cancelled = outcomes.iter().any(|o| o.aborted);
    let mut outcome = EngineOutcome {
        per_region_input: vec![0; n_regions],
        per_region_output: vec![0; n_regions],
        per_region_checksum: vec![0; n_regions],
        network_tuples: network_tuples.into_inner(),
        peak_resident_tuples: gauge.peak_tuples(),
        morsels_routed: morsels_routed.into_inner(),
        backpressure_secs: queues.iter().map(|q| q.blocked_secs()).sum(),
        route_secs: route_nanos.into_inner() as f64 * 1e-9,
        merge_secs: merge_nanos.into_inner() as f64 * 1e-9,
        sweep_secs: sweep_nanos.into_inner() as f64 * 1e-9,
        busy_secs: outcomes.iter().map(|o| o.busy_secs).collect(),
        idle_secs: outcomes.iter().map(|o| o.idle_secs).collect(),
        wall_secs: start.elapsed().as_secs_f64(),
        regions_migrated: tally.regions_migrated,
        migration_tuples: migration_tuples.into_inner(),
        migration_secs: tally.migration_secs,
        routing_epoch: table.epoch(),
        spill_bytes: 0,
        spill_secs: 0.0,
        reload_secs: 0.0,
        wire_bytes: remote_queues.iter().map(|q| q.wire_bytes()).sum(),
        cancelled,
    };
    if let (Some(ctx), Some((b0, s0, r0))) = (io.spill, spill_start) {
        outcome.spill_bytes = ctx.spill_bytes().saturating_sub(b0);
        outcome.spill_secs = (ctx.spill_secs() - s0).max(0.0);
        outcome.reload_secs = (ctx.reload_secs() - r0).max(0.0);
    }
    if !cancelled {
        debug_assert_eq!(
            in_flight.load(Ordering::Acquire),
            0,
            "finished with unabsorbed tuples in flight"
        );
        // A completed run over a private gauge must balance its books:
        // every charged tuple was released by a sweep, a region
        // completion, or a downstream routing release. (Shared gauges are
        // checked by the owning plan/ticket instead.)
        debug_assert!(
            io.gauge.is_some() || local_gauge.current_tuples() == 0,
            "completed run leaked {} gauge tuples",
            local_gauge.current_tuples()
        );
        for o in &outcomes {
            for r in &o.results {
                outcome.per_region_input[r.region as usize] = r.input;
                outcome.per_region_output[r.region as usize] = r.output;
                outcome.per_region_checksum[r.region as usize] = r.checksum;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewh_core::{build_ci, build_csio, CostModel, HistogramParams, Key};
    use std::thread;

    /// A small pool for the unit tests: 4 workers regardless of the host,
    /// mirroring the thread teams the pre-runtime engine spawned.
    fn test_rt() -> EngineRuntime {
        EngineRuntime::new(4)
    }

    fn tuples(keys: &[Key]) -> Vec<Tuple> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u64))
            .collect()
    }

    fn nested_loop(r1: &[Tuple], r2: &[Tuple], cond: &JoinCondition) -> (u64, u64) {
        let (mut c, mut s) = (0u64, 0u64);
        for a in r1 {
            for b in r2 {
                if cond.matches(a.key, b.key) {
                    c += 1;
                    s ^= a.payload.wrapping_mul(31).wrapping_add(b.payload);
                }
            }
        }
        (c, s)
    }

    fn run(
        r1: &[Tuple],
        r2: &[Tuple],
        router: &Router,
        n_regions: usize,
        cond: &JoinCondition,
        morsel: usize,
        reducers: usize,
    ) -> EngineOutcome {
        let region_to_reducer: Vec<u32> = (0..n_regions).map(|r| (r % reducers) as u32).collect();
        let table = RoutingTable::new(&region_to_reducer);
        let plan = MorselPlan::new(r1.len(), r2.len(), morsel);
        let cfg = EngineConfig {
            mappers: 2,
            reducers,
            queue_tuples: 2048,
            probe_chunk: morsel,
            seed: 7,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        };
        run_pipelined(&test_rt(), r1, r2, router, cond, &table, &plan, &cfg, None)
    }

    #[test]
    fn csio_pipeline_matches_nested_loop() {
        let k1: Vec<Key> = (0..3000).map(|i| (i * 7 % 900) as Key).collect();
        let k2: Vec<Key> = (0..3000).map(|i| (i * 11 % 900) as Key).collect();
        let cond = JoinCondition::Band { beta: 2 };
        let scheme = build_csio(
            &k1,
            &k2,
            &cond,
            &CostModel::band(),
            &HistogramParams {
                j: 6,
                ..Default::default()
            },
        );
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        for morsel in [64, 997, 5000] {
            let out = run(
                &r1,
                &r2,
                &scheme.router,
                scheme.num_regions(),
                &cond,
                morsel,
                3,
            );
            assert_eq!(out.output_total(), expect_c, "morsel {morsel}");
            assert_eq!(out.checksum(), expect_s, "morsel {morsel}");
            assert!(!out.cancelled);
            assert_eq!(
                out.morsels_routed as usize,
                MorselPlan::new(r1.len(), r2.len(), morsel).total()
            );
        }
    }

    #[test]
    fn ci_pipeline_counts_match_despite_random_routing() {
        let k: Vec<Key> = (0..2000).map(|i| (i % 50) as Key).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(8, 2000, 2000, None);
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        let out = run(
            &r1,
            &r2,
            &scheme.router,
            scheme.num_regions(),
            &cond,
            256,
            2,
        );
        assert_eq!(out.output_total(), expect_c);
        assert_eq!(out.checksum(), expect_s);
    }

    #[test]
    fn empty_inputs_terminate_cleanly() {
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 0, 0, None);
        let out = run(
            &[],
            &[],
            &scheme.router,
            scheme.num_regions(),
            &cond,
            128,
            2,
        );
        assert_eq!(out.output_total(), 0);
        assert!(!out.cancelled);

        let r2 = tuples(&[1, 2, 3]);
        let out = run(
            &[],
            &r2,
            &scheme.router,
            scheme.num_regions(),
            &cond,
            128,
            2,
        );
        assert_eq!(out.output_total(), 0);
    }

    #[test]
    fn pre_set_cancel_aborts_and_leaves_the_plan_resumable() {
        let k: Vec<Key> = (0..4000).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 4000, 4000, None);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
        let table = RoutingTable::new(&region_to_reducer);
        let plan = MorselPlan::new(r1.len(), r2.len(), 256);
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 2048,
            probe_chunk: 256,
            seed: 3,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let rt = test_rt();
        let out = run_pipelined(
            &rt,
            &r1,
            &r2,
            &scheme.router,
            &cond,
            &table,
            &plan,
            &cfg,
            Some(&cancel),
        );
        assert!(out.cancelled);
        assert_eq!(out.output_total(), 0);
        assert_eq!(out.morsels_routed, 0, "cancel was set before any claim");

        // The same plan drives a follow-up run to the full, correct result
        // (tokens are one-shot, so the resume gets a fresh one).
        let cancel = CancelToken::new();
        let out = run_pipelined(
            &rt,
            &r1,
            &r2,
            &scheme.router,
            &cond,
            &table,
            &plan,
            &cfg,
            Some(&cancel),
        );
        assert!(!out.cancelled);
        assert_eq!(out.output_total(), 4000);
    }

    #[test]
    fn partially_consumed_plan_resumes_and_seals() {
        // Simulate a prior (cancelled) run that claimed a prefix of the plan,
        // including all of R1: a resumed engine run must seed its seal
        // countdowns from the remainder, route only the unconsumed morsels,
        // and terminate normally instead of aborting.
        let k: Vec<Key> = (0..1000).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 1000, 1000, None);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 2048,
            probe_chunk: 128,
            seed: 5,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        };
        let rt = test_rt();
        for pre_claimed in [1usize, 4, 6] {
            let table = RoutingTable::new(&region_to_reducer);
            let plan = MorselPlan::new(r1.len(), r2.len(), 256); // 4 + 4 morsels
            for _ in 0..pre_claimed {
                plan.claim().expect("plan has 8 morsels");
            }
            let out = run_pipelined(
                &rt,
                &r1,
                &r2,
                &scheme.router,
                &cond,
                &table,
                &plan,
                &cfg,
                None,
            );
            assert!(
                !out.cancelled,
                "resume with {pre_claimed} pre-claimed morsels aborted"
            );
            assert_eq!(out.morsels_routed as usize, 8 - pre_claimed);
            // Only the remainder's pairs are produced (a subset join), but
            // the run must complete and account its routed volume.
            assert!(out.network_tuples > 0);
        }
    }

    #[test]
    fn injected_straggler_forces_migrations_and_stays_correct() {
        // Reducer 0 is slowed hard; with aggressive thresholds the
        // coordinator must move its regions to the idle reducer, and the
        // join must still be exact. The CI router's regions all look alike,
        // so this exercises the full Migrate/Adopt/fence path end to end.
        let k: Vec<Key> = (0..4000).map(|i| (i % 200) as Key).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(8, 4000, 4000, None);
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
        let table = RoutingTable::new(&region_to_reducer);
        let plan = MorselPlan::new(r1.len(), r2.len(), 128);
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 512,
            probe_chunk: 64,
            seed: 11,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig {
                reassign: true,
                migrate_backlog_tuples: 1,
                poll_micros: 50,
                ..Default::default()
            },
            straggler: Some(Straggler {
                reducer: 0,
                nanos_per_tuple: 20_000,
            }),
            transport: None,
        };
        let out = run_pipelined(
            &test_rt(),
            &r1,
            &r2,
            &scheme.router,
            &cond,
            &table,
            &plan,
            &cfg,
            None,
        );
        assert!(!out.cancelled);
        assert_eq!(out.output_total(), expect_c);
        assert_eq!(out.checksum(), expect_s);
        assert!(
            out.regions_migrated >= 1,
            "straggler with forced thresholds must trigger migration"
        );
        assert_eq!(out.routing_epoch, out.regions_migrated);
        assert!(out.migration_tuples > 0);
        assert!(out.migration_secs >= 0.0);
        // Each region migrates at most once, so the owner map diverges from
        // the initial placement in exactly `regions_migrated` slots.
        let owners = table.snapshot();
        let moved = owners
            .iter()
            .zip(&region_to_reducer)
            .filter(|(now, init)| now != init)
            .count() as u64;
        assert_eq!(moved, out.regions_migrated);
    }

    /// Streams `r2` through an [`Exchange`] in `batch` -sized chunks from a
    /// producer thread (honoring the gauge contract), runs the engine with
    /// an exchange-fed probe side, and returns the outcome.
    #[allow(clippy::too_many_arguments)]
    fn run_exchange_fed(
        r1: &[Tuple],
        r2: &[Tuple],
        router: &Router,
        n_regions: usize,
        cond: &JoinCondition,
        cfg: &EngineConfig,
        batch: usize,
        capacity: usize,
    ) -> EngineOutcome {
        let region_to_reducer: Vec<u32> =
            (0..n_regions).map(|r| (r % cfg.reducers) as u32).collect();
        let table = RoutingTable::new(&region_to_reducer);
        let plan = MorselPlan::new(r1.len(), 0, 128);
        let r1 = ColumnBatch::from_tuples(r1);
        let exchange = Exchange::new(capacity);
        let gauge = MemGauge::default();
        let rt = test_rt();
        thread::scope(|s| {
            s.spawn(|| {
                for chunk in r2.chunks(batch.max(1)) {
                    gauge.add(chunk.len() as u64);
                    exchange.push(ColumnBatch::from_tuples(chunk));
                }
                exchange.close();
            });
            run_pipelined_io(
                &rt,
                EngineIo {
                    r1: Source::Scan(&r1),
                    r2: Source::Exchange(&exchange),
                    router,
                    cond,
                    table: &table,
                    plan: &plan,
                    sink: None,
                    key_from: crate::local_join::KeyFrom::Probe,
                    gauge: Some(&gauge),
                    cancel: None,
                    budget_tuples: None,
                    spill: None,
                    links: None,
                },
                cfg,
            )
        })
    }

    #[test]
    fn exchange_fed_probe_matches_the_scan_probe() {
        // The same join, probe side streamed through an exchange in awkward
        // batch sizes vs. scanned from memory: identical output, checksum,
        // and network volume (deterministic router).
        let k1: Vec<Key> = (0..2500).map(|i| (i * 7 % 700) as Key).collect();
        let k2: Vec<Key> = (0..2500).map(|i| (i * 11 % 700) as Key).collect();
        let cond = JoinCondition::Band { beta: 1 };
        let scheme = build_csio(
            &k1,
            &k2,
            &cond,
            &CostModel::band(),
            &HistogramParams {
                j: 5,
                ..Default::default()
            },
        );
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let scan = run(
            &r1,
            &r2,
            &scheme.router,
            scheme.num_regions(),
            &cond,
            128,
            2,
        );
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 1024,
            probe_chunk: 128,
            seed: 7,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        };
        for batch in [1usize, 97, 4096] {
            let out = run_exchange_fed(
                &r1,
                &r2,
                &scheme.router,
                scheme.num_regions(),
                &cond,
                &cfg,
                batch,
                512,
            );
            assert!(!out.cancelled, "batch {batch}");
            assert_eq!(out.output_total(), scan.output_total(), "batch {batch}");
            assert_eq!(out.checksum(), scan.checksum(), "batch {batch}");
            assert_eq!(out.network_tuples, scan.network_tuples, "batch {batch}");
        }
    }

    #[test]
    fn exchange_fed_probe_survives_forced_migrations() {
        let k: Vec<Key> = (0..3000).map(|i| (i % 150) as Key).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(8, 3000, 3000, None);
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 512,
            probe_chunk: 64,
            seed: 19,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig {
                reassign: true,
                migrate_backlog_tuples: 1,
                poll_micros: 50,
                ..Default::default()
            },
            straggler: Some(Straggler {
                reducer: 0,
                nanos_per_tuple: 10_000,
            }),
            transport: None,
        };
        let out = run_exchange_fed(
            &r1,
            &r2,
            &scheme.router,
            scheme.num_regions(),
            &cond,
            &cfg,
            61,
            256,
        );
        assert!(!out.cancelled);
        assert_eq!(out.output_total(), expect_c);
        assert_eq!(out.checksum(), expect_s);
    }

    #[test]
    fn cancel_interrupts_a_stalled_exchange_probe() {
        // The upstream producer never pushes and never closes; a cancelled
        // downstream run must still unwind (parked mappers dual-register
        // with the cancel token, whose wake re-polls them) instead of
        // hanging in the exchange forever.
        let r1 = ColumnBatch::from_tuples(&tuples(&(0..500).collect::<Vec<Key>>()));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 500, 0, None);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
        let table = RoutingTable::new(&region_to_reducer);
        let plan = MorselPlan::new(r1.len(), 0, 128);
        let exchange = Exchange::new(256); // open for the whole test
        let cancel = CancelToken::new();
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 512,
            probe_chunk: 64,
            seed: 23,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        };
        let rt = test_rt();
        let out = thread::scope(|s| {
            s.spawn(|| {
                // Let the mappers drain the scan plan and park on the
                // stalled exchange, then cancel — the token's wake is the
                // only thing that can reach a parked mapper.
                std::thread::sleep(std::time::Duration::from_millis(20));
                cancel.cancel();
            });
            run_pipelined_io(
                &rt,
                EngineIo {
                    r1: Source::Scan(&r1),
                    r2: Source::Exchange(&exchange),
                    router: &scheme.router,
                    cond: &cond,
                    table: &table,
                    plan: &plan,
                    sink: None,
                    key_from: crate::local_join::KeyFrom::Probe,
                    gauge: None,
                    cancel: Some(&cancel),
                    budget_tuples: None,
                    spill: None,
                    links: None,
                },
                &cfg,
            )
        });
        assert!(out.cancelled, "stalled-exchange run must abort, not hang");
        assert_eq!(out.output_total(), 0);
    }

    #[test]
    fn empty_exchange_terminates_the_downstream_operator() {
        let r1 = tuples(&[1, 2, 3]);
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 3, 0, None);
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 64,
            probe_chunk: 16,
            seed: 3,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig::default(),
            straggler: None,
            transport: None,
        };
        let out = run_exchange_fed(
            &r1,
            &[],
            &scheme.router,
            scheme.num_regions(),
            &cond,
            &cfg,
            8,
            64,
        );
        assert!(!out.cancelled);
        assert_eq!(out.output_total(), 0);
    }

    #[test]
    fn migration_disabled_runs_the_legacy_protocol() {
        let k: Vec<Key> = (0..1500).map(|i| (i % 90) as Key).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(6, 1500, 1500, None);
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 3) as u32).collect();
        let table = RoutingTable::new(&region_to_reducer);
        let plan = MorselPlan::new(r1.len(), r2.len(), 200);
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 3,
            queue_tuples: 1024,
            probe_chunk: 100,
            seed: 13,
            work: OutputWork::Touch,
            adaptive: AdaptiveConfig {
                reassign: false,
                ..Default::default()
            },
            straggler: None,
            transport: None,
        };
        let out = run_pipelined(
            &test_rt(),
            &r1,
            &r2,
            &scheme.router,
            &cond,
            &table,
            &plan,
            &cfg,
            None,
        );
        assert_eq!(out.output_total(), expect_c);
        assert_eq!(out.checksum(), expect_s);
        assert_eq!(out.regions_migrated, 0);
        assert_eq!(out.routing_epoch, 0);
        assert_eq!(out.migration_tuples, 0);
    }
}
