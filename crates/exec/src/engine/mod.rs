//! # The morsel-driven pipelined execution engine
//!
//! Replaces the two global barriers of the batch path (full shuffle
//! materialization, then joins) with a pipeline of mapper and reducer tasks
//! connected by bounded queues:
//!
//! * **Mappers** claim fixed-size [`Morsel`]s of either relation from a
//!   shared [`MorselPlan`] and batch-route them through the scheme's
//!   [`Router`] ([`ewh_core::RouteBatch`]), pushing per-region fragments to
//!   the owning reducer's bounded queue (backpressure: a full queue blocks
//!   the mapper).
//! * **Reducers** build each owned region's sorted `R1` state incrementally
//!   from the arriving fragments. When the last `R1` morsel is routed, the
//!   finishing mapper broadcasts a seal; reducers merge their sorted runs
//!   and from then on sweep `R2` probe chunks immediately, freeing each
//!   chunk after its sweep. The full probe side is never resident.
//!
//! Peak resident memory is tracked by a cluster-wide [`MemGauge`]; a
//! completed run reports it alongside per-reducer busy/idle time,
//! backpressure stalls, and routed-morsel counts.

mod mapper;
mod morsel;
mod queue;
mod reducer;

pub use morsel::{MemGauge, Morsel, MorselPlan};
pub use queue::{BoundedQueue, Delivery, RegionBatch};
pub use reducer::{merge_sorted_runs, RegionResult};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use ewh_core::{JoinCondition, Router, Tuple};

use crate::local_join::OutputWork;

use mapper::{broadcast, MapperShared, MapperTask};
use reducer::{ReducerOutcome, ReducerTask};

/// Engine tuning knobs (derived from `OperatorConfig` by the operator
/// layer).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Mapper task count.
    pub mappers: usize,
    /// Reducer task count.
    pub reducers: usize,
    /// Bounded queue capacity, in tuples, per reducer.
    pub queue_tuples: usize,
    /// Probe tuples buffered per region before a sweep.
    pub probe_chunk: usize,
    pub seed: u64,
    pub work: OutputWork,
}

impl EngineConfig {
    /// Splits `threads` real threads into mapper and reducer tasks (half
    /// each, at least one of both; a single thread is oversubscribed 1+1,
    /// which is harmless because blocked tasks yield the core).
    pub fn for_threads(threads: usize, morsel_tuples: usize, seed: u64) -> Self {
        let threads = threads.max(1);
        let reducers = (threads / 2).max(1);
        let mappers = (threads - reducers).max(1);
        EngineConfig {
            mappers,
            reducers,
            queue_tuples: 4 * morsel_tuples.max(1),
            // A fraction of the morsel size: a region fed by several morsels
            // flushes (and frees) probe chunks mid-stream instead of only at
            // the final seal. The floor keeps per-sweep overhead amortized.
            probe_chunk: (morsel_tuples / 4).max(64),
            seed,
            work: OutputWork::Touch,
        }
    }
}

/// Everything a completed (or cancelled) engine run reports.
#[derive(Clone, Debug, Default)]
pub struct EngineOutcome {
    /// Input tuples received per region (replication included).
    pub per_region_input: Vec<u64>,
    pub per_region_output: Vec<u64>,
    pub per_region_checksum: Vec<u64>,
    /// Tuples pushed mapper → reducer (== the batch path's network volume
    /// for deterministic routers).
    pub network_tuples: u64,
    /// High-water mark of resident routed tuples across the cluster.
    pub peak_resident_tuples: u64,
    pub morsels_routed: u64,
    /// Total time mappers spent blocked on full reducer queues.
    pub backpressure_secs: f64,
    /// Per-reducer time spent processing vs. waiting.
    pub busy_secs: Vec<f64>,
    pub idle_secs: Vec<f64>,
    pub wall_secs: f64,
    /// True when the run was cancelled; all tallies except morsel/network
    /// counters are zeroed (reducer state is discarded).
    pub cancelled: bool,
}

impl EngineOutcome {
    pub fn output_total(&self) -> u64 {
        self.per_region_output.iter().sum()
    }

    pub fn checksum(&self) -> u64 {
        self.per_region_checksum.iter().fold(0, |acc, &c| acc ^ c)
    }
}

/// Runs one pipelined join execution.
///
/// `region_to_reducer[r]` names the reducer task owning region `r` (values
/// `< cfg.reducers`); the operator layer computes it with LPT over estimated
/// region weights. `cancel` is checked by mappers between morsels; a
/// cancelled run discards all reducer state and reports
/// [`EngineOutcome::cancelled`] — the unconsumed remainder of `plan` stays
/// claimable by a follow-up run (see the adaptive fallback).
#[allow(clippy::too_many_arguments)] // an execution plan, not a builder
pub fn run_pipelined(
    r1: &[Tuple],
    r2: &[Tuple],
    router: &Router,
    cond: &JoinCondition,
    region_to_reducer: &[u32],
    plan: &MorselPlan,
    cfg: &EngineConfig,
    cancel: Option<&AtomicBool>,
) -> EngineOutcome {
    let n_regions = region_to_reducer.len();
    let reducers = cfg.reducers.max(1);
    debug_assert!(region_to_reducer.iter().all(|&q| (q as usize) < reducers));

    let start = Instant::now();
    let queues: Vec<BoundedQueue> = (0..reducers)
        .map(|_| BoundedQueue::new(cfg.queue_tuples))
        .collect();
    let gauge = MemGauge::default();
    let default_cancel = AtomicBool::new(false);
    let cancel = cancel.unwrap_or(&default_cancel);
    // Seed the seal countdowns from the *unconsumed* remainder: a resumed
    // plan (cancelled earlier run) only routes what is left, so counting
    // the full plan would leave the seals unreachable.
    let r1_left = plan.r1_unconsumed();
    let all_left = plan.unconsumed();
    let r1_remaining = AtomicUsize::new(r1_left);
    let all_remaining = AtomicUsize::new(all_left);
    let network_tuples = AtomicU64::new(0);
    let morsels_routed = AtomicU64::new(0);

    // An empty relation — or a portion fully claimed before this run —
    // never triggers a mapper-side seal; pre-seal here.
    if r1_left == 0 {
        broadcast(&queues, || Delivery::SealR1);
    }
    if all_left == 0 {
        broadcast(&queues, || Delivery::SealAll);
    }

    let shared = MapperShared {
        plan,
        r1,
        r2,
        router,
        region_to_reducer,
        queues: &queues,
        r1_remaining: &r1_remaining,
        all_remaining: &all_remaining,
        gauge: &gauge,
        network_tuples: &network_tuples,
        morsels_routed: &morsels_routed,
        seed: cfg.seed,
        cancel,
    };

    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); reducers];
    for (region, &q) in region_to_reducer.iter().enumerate() {
        owned[q as usize].push(region as u32);
    }

    let outcomes: Vec<ReducerOutcome> = thread::scope(|s| {
        let reducer_handles: Vec<_> = owned
            .iter()
            .enumerate()
            .map(|(q, regions)| {
                let task = ReducerTask::new(
                    &queues[q],
                    regions.clone(),
                    n_regions,
                    cond,
                    cfg.work,
                    cfg.probe_chunk,
                    &gauge,
                );
                s.spawn(move || task.run())
            })
            .collect();
        let mapper_handles: Vec<_> = (0..cfg.mappers.max(1))
            .map(|_| {
                let shared = &shared;
                s.spawn(move || MapperTask::new(shared).run())
            })
            .collect();
        for h in mapper_handles {
            h.join().expect("mapper task panicked");
        }
        // If the mappers exited without routing everything (cancellation),
        // the seal chain is broken: abort the reducers explicitly. Control
        // messages bypass queue bounds, so this cannot deadlock.
        if all_remaining.load(Ordering::Acquire) != 0 {
            broadcast(&queues, || Delivery::Abort);
        }
        reducer_handles
            .into_iter()
            .map(|h| h.join().expect("reducer task panicked"))
            .collect()
    });

    let cancelled = outcomes.iter().any(|o| o.aborted);
    let mut outcome = EngineOutcome {
        per_region_input: vec![0; n_regions],
        per_region_output: vec![0; n_regions],
        per_region_checksum: vec![0; n_regions],
        network_tuples: network_tuples.into_inner(),
        peak_resident_tuples: gauge.peak_tuples(),
        morsels_routed: morsels_routed.into_inner(),
        backpressure_secs: queues.iter().map(|q| q.blocked_secs()).sum(),
        busy_secs: outcomes.iter().map(|o| o.busy_secs).collect(),
        idle_secs: outcomes.iter().map(|o| o.idle_secs).collect(),
        wall_secs: start.elapsed().as_secs_f64(),
        cancelled,
    };
    if !cancelled {
        for o in &outcomes {
            for r in &o.results {
                outcome.per_region_input[r.region as usize] = r.input;
                outcome.per_region_output[r.region as usize] = r.output;
                outcome.per_region_checksum[r.region as usize] = r.checksum;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewh_core::{build_ci, build_csio, CostModel, HistogramParams, Key};

    fn tuples(keys: &[Key]) -> Vec<Tuple> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u64))
            .collect()
    }

    fn nested_loop(r1: &[Tuple], r2: &[Tuple], cond: &JoinCondition) -> (u64, u64) {
        let (mut c, mut s) = (0u64, 0u64);
        for a in r1 {
            for b in r2 {
                if cond.matches(a.key, b.key) {
                    c += 1;
                    s ^= a.payload.wrapping_mul(31).wrapping_add(b.payload);
                }
            }
        }
        (c, s)
    }

    fn run(
        r1: &[Tuple],
        r2: &[Tuple],
        router: &Router,
        n_regions: usize,
        cond: &JoinCondition,
        morsel: usize,
        reducers: usize,
    ) -> EngineOutcome {
        let region_to_reducer: Vec<u32> = (0..n_regions).map(|r| (r % reducers) as u32).collect();
        let plan = MorselPlan::new(r1.len(), r2.len(), morsel);
        let cfg = EngineConfig {
            mappers: 2,
            reducers,
            queue_tuples: 2048,
            probe_chunk: morsel,
            seed: 7,
            work: OutputWork::Touch,
        };
        run_pipelined(r1, r2, router, cond, &region_to_reducer, &plan, &cfg, None)
    }

    #[test]
    fn csio_pipeline_matches_nested_loop() {
        let k1: Vec<Key> = (0..3000).map(|i| (i * 7 % 900) as Key).collect();
        let k2: Vec<Key> = (0..3000).map(|i| (i * 11 % 900) as Key).collect();
        let cond = JoinCondition::Band { beta: 2 };
        let scheme = build_csio(
            &k1,
            &k2,
            &cond,
            &CostModel::band(),
            &HistogramParams {
                j: 6,
                ..Default::default()
            },
        );
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        for morsel in [64, 997, 5000] {
            let out = run(
                &r1,
                &r2,
                &scheme.router,
                scheme.num_regions(),
                &cond,
                morsel,
                3,
            );
            assert_eq!(out.output_total(), expect_c, "morsel {morsel}");
            assert_eq!(out.checksum(), expect_s, "morsel {morsel}");
            assert!(!out.cancelled);
            assert_eq!(
                out.morsels_routed as usize,
                MorselPlan::new(r1.len(), r2.len(), morsel).total()
            );
        }
    }

    #[test]
    fn ci_pipeline_counts_match_despite_random_routing() {
        let k: Vec<Key> = (0..2000).map(|i| (i % 50) as Key).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(8, 2000, 2000, None);
        let (expect_c, expect_s) = nested_loop(&r1, &r2, &cond);
        let out = run(
            &r1,
            &r2,
            &scheme.router,
            scheme.num_regions(),
            &cond,
            256,
            2,
        );
        assert_eq!(out.output_total(), expect_c);
        assert_eq!(out.checksum(), expect_s);
    }

    #[test]
    fn empty_inputs_terminate_cleanly() {
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 0, 0, None);
        let out = run(
            &[],
            &[],
            &scheme.router,
            scheme.num_regions(),
            &cond,
            128,
            2,
        );
        assert_eq!(out.output_total(), 0);
        assert!(!out.cancelled);

        let r2 = tuples(&[1, 2, 3]);
        let out = run(
            &[],
            &r2,
            &scheme.router,
            scheme.num_regions(),
            &cond,
            128,
            2,
        );
        assert_eq!(out.output_total(), 0);
    }

    #[test]
    fn pre_set_cancel_aborts_and_leaves_the_plan_resumable() {
        let k: Vec<Key> = (0..4000).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 4000, 4000, None);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
        let plan = MorselPlan::new(r1.len(), r2.len(), 256);
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 2048,
            probe_chunk: 256,
            seed: 3,
            work: OutputWork::Touch,
        };
        let cancel = AtomicBool::new(true);
        let out = run_pipelined(
            &r1,
            &r2,
            &scheme.router,
            &cond,
            &region_to_reducer,
            &plan,
            &cfg,
            Some(&cancel),
        );
        assert!(out.cancelled);
        assert_eq!(out.output_total(), 0);
        assert_eq!(out.morsels_routed, 0, "cancel was set before any claim");

        // The same plan drives a follow-up run to the full, correct result.
        cancel.store(false, Ordering::Relaxed);
        let out = run_pipelined(
            &r1,
            &r2,
            &scheme.router,
            &cond,
            &region_to_reducer,
            &plan,
            &cfg,
            Some(&cancel),
        );
        assert!(!out.cancelled);
        assert_eq!(out.output_total(), 4000);
    }

    #[test]
    fn partially_consumed_plan_resumes_and_seals() {
        // Simulate a prior (cancelled) run that claimed a prefix of the plan,
        // including all of R1: a resumed engine run must seed its seal
        // countdowns from the remainder, route only the unconsumed morsels,
        // and terminate normally instead of aborting.
        let k: Vec<Key> = (0..1000).collect();
        let (r1, r2) = (tuples(&k), tuples(&k));
        let cond = JoinCondition::Equi;
        let scheme = build_ci(4, 1000, 1000, None);
        let region_to_reducer: Vec<u32> =
            (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
        let cfg = EngineConfig {
            mappers: 2,
            reducers: 2,
            queue_tuples: 2048,
            probe_chunk: 128,
            seed: 5,
            work: OutputWork::Touch,
        };
        for pre_claimed in [1usize, 4, 6] {
            let plan = MorselPlan::new(r1.len(), r2.len(), 256); // 4 + 4 morsels
            for _ in 0..pre_claimed {
                plan.claim().expect("plan has 8 morsels");
            }
            let out = run_pipelined(
                &r1,
                &r2,
                &scheme.router,
                &cond,
                &region_to_reducer,
                &plan,
                &cfg,
                None,
            );
            assert!(
                !out.cancelled,
                "resume with {pre_claimed} pre-claimed morsels aborted"
            );
            assert_eq!(out.morsels_routed as usize, 8 - pre_claimed);
            // Only the remainder's pairs are produced (a subset join), but
            // the run must complete and account its routed volume.
            assert!(out.network_tuples > 0);
        }
    }
}
