//! The shared worker-pool runtime: one fixed-size team of OS threads,
//! created once and sized to the host, that multiplexes the mapper /
//! reducer / coordinator work of *many* concurrent operators and plans.
//!
//! Before this module existed every `run_operator` / `run_plan` call
//! spawned a dedicated thread team, so two concurrent queries oversubscribed
//! the host instead of sharing it. The runtime replaces per-query spawning
//! with per-query *task batches*:
//!
//! * **Tasks, not threads.** An engine task is a resumable state machine
//!   behind a `FnMut() -> Poll` closure. A task that would block — a full
//!   reducer queue, an empty exchange, a coordinator between polls —
//!   returns [`Poll::Pending`] instead of parking an OS thread, so a
//!   fixed-size pool can interleave any number of queries without
//!   deadlocking on its own size. [`Poll::Yielded`] marks "made progress,
//!   more to do": the task goes back on the queue but resets the worker's
//!   starvation heuristics.
//! * **Per-worker deques plus work-stealing.** Each worker owns a deque;
//!   freshly spawned tasks land on a global injector, rescheduled tasks on
//!   the worker that ran them (locality), and an idle worker steals from
//!   its siblings before sleeping. Steals are counted
//!   ([`RuntimeMetrics::tasks_stolen`]) — the observable trace of the
//!   load-balancing the paper's shared-resource model assumes.
//! * **Scoped submission.** [`EngineRuntime::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack, and
//!   the scope does not return until every spawned task has completed (or
//!   panicked — the first panic is resent at the join, after all tasks
//!   finished). [`TaskGroup`]s let the orchestrating (non-worker) thread
//!   wait for a subset — the engine waits for its mappers before deciding
//!   whether the seal chain broke — while the rest keep running.
//! * **Admission.** [`EngineRuntime::admit`] gates *queries* (not tasks):
//!   at most `max_concurrent_queries` tickets are outstanding, and when the
//!   runtime is built with a global memory budget each ticket carves a
//!   tuple budget out of it — the per-query [`MemGauge`] hangs off the
//!   ticket, so a query's peak is measured against the slice it was
//!   granted. Admission blocks the *client* thread, never a pool worker;
//!   calling it from inside a task would deadlock the pool and is the one
//!   usage rule this module imposes.
//!
//! A worker that only holds blocked tasks naps briefly (tens of
//! microseconds) between sweeps instead of spinning, after first checking
//! the injector and its siblings for runnable work — that check is what
//! makes the pool deadlock-free under any task placement: runnable work
//! can never be stranded behind a sleeping worker forever.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use super::morsel::MemGauge;

/// What one task poll reports back to its worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poll {
    /// The task is finished; drop it and signal its scope.
    Ready,
    /// The task did useful work and has more; reschedule it.
    Yielded,
    /// The task cannot progress until some *other* task runs (full queue,
    /// empty exchange, timer not yet due); reschedule it, and if the whole
    /// deque is pending, let the worker nap before the next sweep.
    Pending,
}

/// How long a worker naps when every task it can see is `Pending`. This
/// is the pool's reaction latency to cross-task wakeups (a queue push, an
/// exchange close), so it is kept small — a parked reducer that reacts
/// late lets queues run to their bounds and inflates the resident peak —
/// while still ceding the core instead of spinning on a blocked pipeline.
const PENDING_NAP: Duration = Duration::from_micros(10);

/// Base timed park of an idle worker. Parks back off exponentially (see
/// [`IDLE_PARK_MAX`]) so a fully idle pool costs a handful of wakeups per
/// second instead of thousands; fresh injector pushes and rescheduled
/// deque jobs notify the condvar, so reaction to new work stays immediate
/// regardless of the backoff.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Cap on the idle-park backoff: the worst-case delay before a worker
/// notices stealable work that appeared without a notification.
const IDLE_PARK_MAX: Duration = Duration::from_millis(5);

/// Construction knobs for [`EngineRuntime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Pool size: the total OS threads executing engine tasks, for every
    /// query sharing this runtime.
    pub workers: usize,
    /// Admission limit: queries holding a [`QueryTicket`] at once. Further
    /// `admit` calls block (on the client thread) until a ticket drops.
    pub max_concurrent_queries: usize,
    /// Optional runtime-global memory budget, in tuples. Each admitted
    /// query carves its slice out of this (see [`EngineRuntime::admit`]);
    /// `None` disables budget gating (tickets still carry a gauge).
    pub memory_budget_tuples: Option<u64>,
}

impl RuntimeConfig {
    /// A pool of `workers` threads, admitting up to `workers` concurrent
    /// queries (at least 2 so pipelines of two operators can always
    /// overlap), with no memory budget.
    pub fn for_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        RuntimeConfig {
            workers,
            max_concurrent_queries: workers.max(2),
            memory_budget_tuples: None,
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeMetrics {
    pub workers: usize,
    /// Tasks submitted over the runtime's lifetime.
    pub tasks_spawned: u64,
    /// Tasks that ran to `Ready` (or panicked).
    pub tasks_completed: u64,
    /// Tasks a worker took from a *sibling's* deque — the work-stealing
    /// traffic that keeps skewed task batches from stranding idle workers.
    pub tasks_stolen: u64,
    /// Individual `poll` invocations across all tasks.
    pub polls: u64,
    /// Summed wall time workers spent inside task polls.
    pub busy_secs: f64,
    /// Wall time since the runtime was built.
    pub uptime_secs: f64,
    /// Queries admitted so far.
    pub admissions: u64,
    /// Summed time queries waited in the admission queue.
    pub admission_wait_secs: f64,
    /// Queries currently holding a ticket.
    pub active_queries: usize,
    /// Tuple budget currently carved out by admitted queries.
    pub budget_in_use_tuples: u64,
}

impl RuntimeMetrics {
    /// Fraction of the pool's capacity spent inside task polls since the
    /// runtime was built (1.0 = every worker busy the whole time).
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.uptime_secs;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_secs / capacity).min(1.0)
        }
    }
}

/// One schedulable unit: the type-erased task closure plus the completion
/// hooks of the scope (and optional group) that spawned it.
///
/// The closure's true lifetime is the spawning scope's `'env`; it is
/// transmuted to `'static` so it can sit in the pool's queues. Soundness
/// rests on the scope invariant: [`EngineRuntime::scope`] does not return
/// until `outstanding == 0`, and a job's closure is dropped *before* its
/// completion is signalled, so no job can touch (or drop) its borrows
/// after the borrowed stack frame is gone.
struct Job {
    run: Box<dyn FnMut() -> Poll + Send + 'static>,
    scope: Arc<ScopeSync>,
    group: Option<Arc<GroupSync>>,
}

struct ScopeSync {
    state: Mutex<ScopeState>,
    cv: Condvar,
}

struct ScopeState {
    outstanding: usize,
    /// First panic payload from any task of this scope.
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeSync {
    fn new() -> Self {
        ScopeSync {
            state: Mutex::new(ScopeState {
                outstanding: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn register(&self) {
        self.state.lock().expect("scope poisoned").outstanding += 1;
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("scope poisoned");
        st.outstanding -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.outstanding == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_all(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("scope poisoned");
        while st.outstanding > 0 {
            st = self.cv.wait(st).expect("scope poisoned");
        }
        st.panic.take()
    }
}

struct GroupSync {
    outstanding: Mutex<usize>,
    cv: Condvar,
}

/// A handle over a subset of a scope's tasks, so the orchestrating thread
/// can wait for just that subset (the engine waits for its mappers while
/// reducers and the coordinator keep running). Waiting from *inside* a
/// pool task would deadlock the pool; only the scope's caller thread may
/// wait.
pub struct TaskGroup {
    sync: Arc<GroupSync>,
}

impl TaskGroup {
    /// Blocks the calling (non-worker) thread until every task spawned
    /// into this group has completed.
    pub fn wait(&self) {
        let mut n = self.sync.outstanding.lock().expect("group poisoned");
        while *n > 0 {
            n = self.sync.cv.wait(n).expect("group poisoned");
        }
    }
}

struct Admission {
    active: usize,
    budget_in_use: u64,
}

struct PoolShared {
    /// Per-worker deques. Plain mutexed deques, not lock-free Chase–Lev:
    /// every slot holds a coarse unit of work (a morsel route, a queue
    /// drain), so contention on these locks is noise next to the work.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Global submission queue; also the condvar workers park on.
    injector: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    // Counters (all relaxed: they are metrics, never synchronization).
    tasks_spawned: AtomicU64,
    tasks_completed: AtomicU64,
    tasks_stolen: AtomicU64,
    polls: AtomicU64,
    busy_nanos: AtomicU64,
    admissions: AtomicU64,
    admission_wait_nanos: AtomicU64,
    admission: Mutex<Admission>,
    admission_cv: Condvar,
}

/// The persistent shared worker-pool runtime (see the module docs). Build
/// one per process — or per experiment, when a benchmark wants a pool of a
/// specific size — and pass it to every `run_operator` / `run_plan` call;
/// [`EngineRuntime::global`] offers a lazily built host-sized default.
///
/// Dropping the runtime shuts the pool down (all scopes have necessarily
/// completed first, because they borrow the runtime).
pub struct EngineRuntime {
    shared: Arc<PoolShared>,
    cfg: RuntimeConfig,
    started: Instant,
    workers: Vec<JoinHandle<()>>,
}

impl EngineRuntime {
    /// A runtime with [`RuntimeConfig::for_workers`] defaults.
    pub fn new(workers: usize) -> Self {
        Self::with_config(RuntimeConfig::for_workers(workers))
    }

    pub fn with_config(cfg: RuntimeConfig) -> Self {
        let workers = cfg.workers.max(1);
        // A zero budget would make admit's clamp-to-total panic (and means
        // "no query ever fits"); treat it as the smallest real budget.
        let memory_budget_tuples = cfg.memory_budget_tuples.map(|t| t.max(1));
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_spawned: AtomicU64::new(0),
            tasks_completed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            admission_wait_nanos: AtomicU64::new(0),
            admission: Mutex::new(Admission {
                active: 0,
                budget_in_use: 0,
            }),
            admission_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ewh-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        EngineRuntime {
            shared,
            cfg: RuntimeConfig {
                workers,
                memory_budget_tuples,
                ..cfg
            },
            started: Instant::now(),
            workers: handles,
        }
    }

    /// The process-wide default runtime, built on first use and sized to
    /// the host (at least 2 workers, so a two-operator pipeline overlaps
    /// even on a single-core machine).
    pub fn global() -> &'static EngineRuntime {
        static GLOBAL: OnceLock<EngineRuntime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
                .max(2);
            EngineRuntime::new(workers)
        })
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Snapshot of the runtime counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        let sh = &self.shared;
        let adm = sh.admission.lock().expect("admission poisoned");
        RuntimeMetrics {
            workers: self.cfg.workers,
            tasks_spawned: sh.tasks_spawned.load(Ordering::Relaxed),
            tasks_completed: sh.tasks_completed.load(Ordering::Relaxed),
            tasks_stolen: sh.tasks_stolen.load(Ordering::Relaxed),
            polls: sh.polls.load(Ordering::Relaxed),
            busy_secs: sh.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            uptime_secs: self.started.elapsed().as_secs_f64(),
            admissions: sh.admissions.load(Ordering::Relaxed),
            admission_wait_secs: sh.admission_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            active_queries: adm.active,
            budget_in_use_tuples: adm.budget_in_use,
        }
    }

    /// Admits one query, blocking the *client* thread until an admission
    /// slot — and, under a global memory budget, enough unreserved budget —
    /// is available. `requested_tuples` is the query's own estimate (e.g.
    /// its configured memory capacity); with a global budget and no
    /// request, the query gets an equal `total / max_concurrent` slice. A
    /// request larger than the whole budget is clamped to it rather than
    /// rejected, and waits for the pool to drain.
    ///
    /// Must never be called from inside a pool task (it would park the
    /// worker the unblocking query needs).
    pub fn admit(&self, requested_tuples: Option<u64>) -> QueryTicket<'_> {
        let start = Instant::now();
        let sh = &self.shared;
        let max_q = self.cfg.max_concurrent_queries.max(1);
        let budget = match self.cfg.memory_budget_tuples {
            Some(total) => Some(match requested_tuples {
                Some(r) => r.clamp(1, total),
                None => (total / max_q as u64).max(1),
            }),
            None => requested_tuples,
        };
        let gated = self
            .cfg
            .memory_budget_tuples
            .map(|t| (t, budget.unwrap_or(0)));
        // Only a budget-gated runtime carves anything: a bare request on an
        // un-budgeted runtime is advisory (it sizes the ticket's
        // over-budget check) and must not show up as budget "in use".
        let carved = gated.map(|(_, req)| req).unwrap_or(0);
        let mut adm = sh.admission.lock().expect("admission poisoned");
        loop {
            let slots_full = adm.active >= max_q;
            // Budget gating only defers while someone else holds budget to
            // return — an empty pool always admits, so one oversized query
            // can never wedge the queue.
            let budget_full = match gated {
                Some((total, req)) => adm.active > 0 && adm.budget_in_use + req > total,
                None => false,
            };
            if !slots_full && !budget_full {
                break;
            }
            adm = sh.admission_cv.wait(adm).expect("admission poisoned");
        }
        adm.active += 1;
        adm.budget_in_use += carved;
        drop(adm);
        let wait = start.elapsed();
        sh.admissions.fetch_add(1, Ordering::Relaxed);
        sh.admission_wait_nanos
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        QueryTicket {
            rt: self,
            budget_tuples: budget,
            carved,
            gauge: MemGauge::default(),
            wait,
            spill_dir: OnceLock::new(),
        }
    }

    /// Runs `f` with a [`RuntimeScope`] through which borrowed tasks can be
    /// spawned onto the pool; returns only after every spawned task
    /// completed. Mirrors `std::thread::scope`: if a task panicked, the
    /// first panic is resent here (after all tasks finished); if `f` itself
    /// panics, the scope still waits before unwinding.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'s> FnOnce(&'s RuntimeScope<'s, 'env>) -> R,
    {
        let scope = RuntimeScope {
            rt: self,
            sync: Arc::new(ScopeSync::new()),
            _env: PhantomData,
            _scope: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let task_panic = scope.sync.wait_all();
        match result {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                if let Some(p) = task_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    fn inject(&self, job: Job) {
        let sh = &self.shared;
        sh.tasks_spawned.fetch_add(1, Ordering::Relaxed);
        sh.injector
            .lock()
            .expect("injector poisoned")
            .push_back(job);
        sh.work_cv.notify_one();
    }
}

impl Drop for EngineRuntime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// An admitted query's handle: its carved memory budget and the per-query
/// [`MemGauge`] the engine charges. Dropping the ticket releases the
/// admission slot and returns the budget to the runtime.
pub struct QueryTicket<'rt> {
    rt: &'rt EngineRuntime,
    budget_tuples: Option<u64>,
    /// Tuples actually reserved against the runtime's global budget
    /// (0 on an un-budgeted runtime, where requests are advisory).
    carved: u64,
    gauge: MemGauge,
    wait: Duration,
    /// Lazily named per-query spill directory; removed wholesale when the
    /// ticket drops (success, cancel and panic paths alike), so spilled
    /// runs can never outlive their query.
    spill_dir: OnceLock<PathBuf>,
}

impl QueryTicket<'_> {
    /// The per-query gauge; pass it to the engine so this query's peak is
    /// measured against its own budget slice.
    pub fn gauge(&self) -> &MemGauge {
        &self.gauge
    }

    /// Tuple budget carved for this query (`None`: admission was not
    /// budget-gated and the query made no request).
    pub fn budget_tuples(&self) -> Option<u64> {
        self.budget_tuples
    }

    /// How long this query sat in the admission queue.
    pub fn admission_wait_secs(&self) -> f64 {
        self.wait.as_secs_f64()
    }

    /// Did the query's realized peak exceed its carved budget?
    pub fn over_budget(&self) -> bool {
        self.budget_tuples
            .map(|b| self.gauge.peak_tuples() > b)
            .unwrap_or(false)
    }

    /// This query's private spill directory, a uniquely named child of
    /// `base` (the system temp dir when `None`). The name is fixed on
    /// first call; nothing is created on disk here — the engine's spill
    /// writer makes the directory on the first actual spill — but whatever
    /// ends up inside is removed when the ticket drops.
    pub fn spill_dir(&self, base: Option<&Path>) -> &Path {
        self.spill_dir.get_or_init(|| {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let base = base
                .map(Path::to_path_buf)
                .unwrap_or_else(std::env::temp_dir);
            base.join(format!(
                "ewh-spill-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        })
    }
}

impl Drop for QueryTicket<'_> {
    fn drop(&mut self) {
        // Tmpfile hygiene: the spill directory (if any run was ever
        // written) dies with the ticket, on every exit path.
        if let Some(dir) = self.spill_dir.get() {
            let _ = std::fs::remove_dir_all(dir);
        }
        let sh = &self.rt.shared;
        let mut adm = sh.admission.lock().expect("admission poisoned");
        adm.active -= 1;
        adm.budget_in_use -= self.carved;
        drop(adm);
        sh.admission_cv.notify_all();
    }
}

/// Scoped task submission handle (see [`EngineRuntime::scope`]). The two
/// lifetimes mirror `std::thread::Scope`: `'scope` is the scope's own
/// region, `'env` the environment tasks may borrow from.
pub struct RuntimeScope<'scope, 'env: 'scope> {
    rt: &'scope EngineRuntime,
    sync: Arc<ScopeSync>,
    _env: PhantomData<&'env mut &'env ()>,
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'env> RuntimeScope<'scope, 'env> {
    /// Spawns one task onto the pool. The closure is polled repeatedly
    /// until it returns [`Poll::Ready`]; it must never block on another
    /// task's progress (return [`Poll::Pending`] instead).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnMut() -> Poll + Send + 'env,
    {
        self.spawn_impl(None, f);
    }

    /// A new (empty) task group for [`RuntimeScope::spawn_in`].
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            sync: Arc::new(GroupSync {
                outstanding: Mutex::new(0),
                cv: Condvar::new(),
            }),
        }
    }

    /// Spawns a task whose completion also counts toward `group`.
    pub fn spawn_in<F>(&self, group: &TaskGroup, f: F)
    where
        F: FnMut() -> Poll + Send + 'env,
    {
        self.spawn_impl(Some(Arc::clone(&group.sync)), f);
    }

    fn spawn_impl<F>(&self, group: Option<Arc<GroupSync>>, f: F)
    where
        F: FnMut() -> Poll + Send + 'env,
    {
        let boxed: Box<dyn FnMut() -> Poll + Send + 'env> = Box::new(f);
        // SAFETY: the closure only ever runs — and is dropped — before
        // `scope` returns (ScopeSync::wait_all), so its `'env` borrows are
        // live for every use. See the `Job` docs.
        let boxed: Box<dyn FnMut() -> Poll + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        self.sync.register();
        if let Some(g) = &group {
            *g.outstanding.lock().expect("group poisoned") += 1;
        }
        self.rt.inject(Job {
            run: boxed,
            scope: Arc::clone(&self.sync),
            group,
        });
    }
}

fn complete_job(shared: &PoolShared, job: Job, panic: Option<Box<dyn Any + Send>>) {
    let Job { run, scope, group } = job;
    // Drop the task closure *before* signalling: the moment the scope's
    // counter hits zero the borrowed stack frame may unwind.
    drop(run);
    if let Some(g) = group {
        let mut n = g.outstanding.lock().expect("group poisoned");
        *n -= 1;
        if *n == 0 {
            g.cv.notify_all();
        }
    }
    shared.tasks_completed.fetch_add(1, Ordering::Relaxed);
    scope.complete(panic);
}

/// Picks the next job for worker `me`: own deque first (locality), then
/// the injector (fresh work), then a sweep over sibling deques (stealing).
fn next_job(shared: &PoolShared, me: usize) -> Option<Job> {
    if let Some(job) = shared.deques[me]
        .lock()
        .expect("deque poisoned")
        .pop_front()
    {
        return Some(job);
    }
    steal_job(shared, me)
}

/// Fresh or stealable work from anywhere but `me`'s own deque.
fn steal_job(shared: &PoolShared, me: usize) -> Option<Job> {
    if let Some(job) = shared
        .injector
        .lock()
        .expect("injector poisoned")
        .pop_front()
    {
        return Some(job);
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(job) = shared.deques[victim]
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            shared.tasks_stolen.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &PoolShared, me: usize) {
    // Consecutive polls that returned `Pending`; once the streak covers the
    // whole local deque, nothing local is runnable — look elsewhere, then
    // nap.
    let mut pending_streak = 0usize;
    // Consecutive empty parks; drives the exponential idle backoff.
    let mut idle_parks = 0u32;
    loop {
        let Some(mut job) = next_job(shared, me) else {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = shared.injector.lock().expect("injector poisoned");
            if guard.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                // Timed park with backoff: injector pushes and deque
                // requeues notify us; the timeout only bounds how late we
                // notice unannounced stealable work.
                let park = IDLE_PARK
                    .saturating_mul(1 << idle_parks.min(5))
                    .min(IDLE_PARK_MAX);
                let _ = shared
                    .work_cv
                    .wait_timeout(guard, park)
                    .expect("injector poisoned");
                idle_parks = idle_parks.saturating_add(1);
            }
            pending_streak = 0;
            continue;
        };
        idle_parks = 0;
        let start = Instant::now();
        let polled = catch_unwind(AssertUnwindSafe(|| (job.run)()));
        shared
            .busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.polls.fetch_add(1, Ordering::Relaxed);
        match polled {
            Ok(Poll::Ready) => {
                complete_job(shared, job, None);
                pending_streak = 0;
            }
            Err(panic) => {
                complete_job(shared, job, Some(panic));
                pending_streak = 0;
            }
            Ok(Poll::Yielded) => {
                shared.deques[me]
                    .lock()
                    .expect("deque poisoned")
                    .push_back(job);
                // The requeued job is stealable: wake a parked sibling (a
                // no-waiter notify is an atomic check, cheap on this path).
                shared.work_cv.notify_one();
                pending_streak = 0;
            }
            Ok(Poll::Pending) => {
                let mut deque = shared.deques[me].lock().expect("deque poisoned");
                deque.push_back(job);
                let len = deque.len();
                drop(deque);
                shared.work_cv.notify_one();
                pending_streak += 1;
                if pending_streak >= len {
                    // Everything local is blocked: pull in fresh/stealable
                    // work if any exists, otherwise nap instead of spinning.
                    if let Some(other) = steal_job(shared, me) {
                        shared.deques[me]
                            .lock()
                            .expect("deque poisoned")
                            .push_front(other);
                    } else if !shared.shutdown.load(Ordering::Acquire) {
                        thread::sleep(PENDING_NAP);
                    }
                    pending_streak = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let rt = EngineRuntime::new(3);
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..20 {
                let counter = &counter;
                let mut left = 3u32; // each task yields a few times first
                s.spawn(move || {
                    if left > 0 {
                        left -= 1;
                        return Poll::Yielded;
                    }
                    counter.fetch_add(1, Ordering::Relaxed);
                    Poll::Ready
                });
            }
        });
        assert_eq!(counter.into_inner(), 20);
        let m = rt.metrics();
        assert_eq!(m.tasks_spawned, 20);
        assert_eq!(m.tasks_completed, 20);
        assert!(m.polls >= 80, "each task polls at least 4 times");
    }

    #[test]
    fn pending_tasks_make_progress_via_other_tasks_on_one_worker() {
        // A single-worker pool must still complete a dependency chain where
        // task B blocks until task A flips a flag: B parks as Pending, the
        // worker keeps polling, A runs, B completes. This is the
        // cooperative-scheduling property the whole engine rests on.
        let rt = EngineRuntime::new(1);
        let flag = AtomicBool::new(false);
        rt.scope(|s| {
            {
                let flag = &flag;
                s.spawn(move || {
                    if flag.load(Ordering::Acquire) {
                        Poll::Ready
                    } else {
                        Poll::Pending
                    }
                });
            }
            let flag = &flag;
            let mut spins = 5u32;
            s.spawn(move || {
                if spins > 0 {
                    spins -= 1;
                    return Poll::Yielded;
                }
                flag.store(true, Ordering::Release);
                Poll::Ready
            });
        });
        assert!(flag.into_inner());
    }

    #[test]
    fn groups_complete_independently_of_the_scope() {
        let rt = EngineRuntime::new(2);
        let stop = AtomicBool::new(false);
        rt.scope(|s| {
            // A long-runner that only exits when told.
            {
                let stop = &stop;
                s.spawn(move || {
                    if stop.load(Ordering::Acquire) {
                        Poll::Ready
                    } else {
                        Poll::Pending
                    }
                });
            }
            let group = s.group();
            for _ in 0..4 {
                s.spawn_in(&group, || Poll::Ready);
            }
            group.wait(); // must return while the long-runner still spins
            stop.store(true, Ordering::Release);
        });
    }

    #[test]
    fn work_is_stolen_when_one_worker_hoards_tasks() {
        // All tasks yield many times; with several workers and one injector
        // the deques end up imbalanced enough that someone steals. This is
        // probabilistic in principle but deterministic in practice: the
        // first worker drains the injector into its own deque faster than
        // siblings wake.
        let rt = EngineRuntime::new(4);
        rt.scope(|s| {
            for _ in 0..64 {
                let mut left = 50u32;
                s.spawn(move || {
                    if left > 0 {
                        left -= 1;
                        std::hint::black_box(left);
                        Poll::Yielded
                    } else {
                        Poll::Ready
                    }
                });
            }
        });
        let m = rt.metrics();
        assert_eq!(m.tasks_completed, 64);
        assert!(m.busy_secs >= 0.0 && m.uptime_secs > 0.0);
        assert!(m.utilization() >= 0.0 && m.utilization() <= 1.0);
    }

    #[test]
    fn task_panic_propagates_at_the_scope_join() {
        let rt = EngineRuntime::new(2);
        let survived = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                let survived = &survived;
                s.spawn(move || {
                    survived.fetch_add(1, Ordering::Relaxed);
                    Poll::Ready
                });
                s.spawn(|| panic!("task exploded"));
            });
        }));
        assert!(result.is_err(), "scope must resend the task panic");
        assert_eq!(survived.load(Ordering::Relaxed), 1);
        // The runtime survives a panicked task: later scopes still run.
        let after = AtomicUsize::new(0);
        rt.scope(|s| {
            let after = &after;
            s.spawn(move || {
                after.fetch_add(1, Ordering::Relaxed);
                Poll::Ready
            });
        });
        assert_eq!(after.into_inner(), 1);
    }

    #[test]
    fn admission_limits_concurrent_tickets() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 2,
            max_concurrent_queries: 1,
            memory_budget_tuples: None,
        });
        let t1 = rt.admit(None);
        assert_eq!(rt.metrics().active_queries, 1);
        // A second admit must wait until t1 drops.
        thread::scope(|s| {
            let waiter = s.spawn(|| {
                let t2 = rt.admit(None);
                t2.admission_wait_secs()
            });
            thread::sleep(Duration::from_millis(20));
            drop(t1);
            let waited = waiter.join().expect("waiter panicked");
            assert!(
                waited >= 0.010,
                "second ticket should have waited ~20ms, waited {waited}"
            );
        });
        let m = rt.metrics();
        assert_eq!(m.admissions, 2);
        assert!(m.admission_wait_secs >= 0.010);
        assert_eq!(m.active_queries, 0);
    }

    #[test]
    fn budget_is_carved_and_returned() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 4,
            memory_budget_tuples: Some(1000),
        });
        let a = rt.admit(Some(600));
        assert_eq!(a.budget_tuples(), Some(600));
        assert_eq!(rt.metrics().budget_in_use_tuples, 600);
        // Unrequested budget defaults to an equal share of the total.
        let b = rt.admit(None);
        assert_eq!(b.budget_tuples(), Some(250));
        // An over-sized request clamps to the whole budget instead of
        // deadlocking the queue.
        drop(a);
        drop(b);
        let c = rt.admit(Some(10_000));
        assert_eq!(c.budget_tuples(), Some(1000));
        c.gauge().add(1500);
        assert!(c.over_budget());
        drop(c);
        assert_eq!(rt.metrics().budget_in_use_tuples, 0);
    }

    #[test]
    fn ticket_spill_dirs_are_unique_and_removed_on_drop() {
        let rt = EngineRuntime::new(1);
        let a = rt.admit(None);
        let b = rt.admit(None);
        let da = a.spill_dir(None).to_path_buf();
        let db = b.spill_dir(None).to_path_buf();
        assert_ne!(da, db, "concurrent tickets must not share a spill dir");
        assert_eq!(
            a.spill_dir(None),
            da.as_path(),
            "name is fixed on first call"
        );
        assert!(!da.exists(), "nothing touches disk until a run is written");
        std::fs::create_dir_all(&da).expect("create spill dir");
        std::fs::write(da.join("run-0.spill"), b"x").expect("write run");
        drop(a);
        assert!(!da.exists(), "ticket drop removes the spill dir");
        drop(b);
    }

    #[test]
    fn zero_budget_runtimes_normalize_instead_of_panicking() {
        // A budget that rounds to zero (e.g. a sub-tuple byte capacity)
        // must not violate clamp's precondition inside admit.
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 1,
            memory_budget_tuples: Some(0),
        });
        let t = rt.admit(Some(10));
        assert_eq!(t.budget_tuples(), Some(1));
        drop(t);
        assert_eq!(rt.metrics().budget_in_use_tuples, 0);
    }

    #[test]
    fn ungated_requests_do_not_count_as_carved_budget() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 2,
            memory_budget_tuples: None,
        });
        let t = rt.admit(Some(5000));
        // The request sizes the ticket's over-budget check but carves
        // nothing from a budget that does not exist.
        assert_eq!(t.budget_tuples(), Some(5000));
        assert_eq!(rt.metrics().budget_in_use_tuples, 0);
    }

    #[test]
    fn global_runtime_is_shared_and_sized_to_the_host() {
        let a = EngineRuntime::global();
        let b = EngineRuntime::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 2);
    }
}
