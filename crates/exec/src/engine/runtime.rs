//! The shared worker-pool runtime: one fixed-size team of OS threads,
//! created once and sized to the host, that multiplexes the mapper /
//! reducer / coordinator work of *many* concurrent operators and plans.
//!
//! Before this module existed every `run_operator` / `run_plan` call
//! spawned a dedicated thread team, so two concurrent queries oversubscribed
//! the host instead of sharing it. The runtime replaces per-query spawning
//! with per-query *task batches*:
//!
//! * **Tasks, not threads.** An engine task is a resumable state machine
//!   behind a `FnMut(&TaskCx) -> Poll` closure. A task that would block — a
//!   full reducer queue, an empty exchange, a coordinator between polls —
//!   returns [`Poll::Pending`] instead of parking an OS thread, so a
//!   fixed-size pool can interleave any number of queries without
//!   deadlocking on its own size. [`Poll::Yielded`] marks "made progress,
//!   more to do": the task goes straight back on the queue.
//! * **Event-driven parking, not polling.** `Pending` is a contract, not a
//!   hint: before returning it the task must have registered its
//!   [`Waker`] (via [`TaskCx::waker`]) with whichever resource blocked it —
//!   a [`BoundedQueue`](super::queue::BoundedQueue) slot, an
//!   [`Exchange`](super::exchange::Exchange) batch, a [`WakeSet`]
//!   countdown, a [`CancelToken`], or a [`TaskCx::sleep`] timer. The job is
//!   then *parked*: it leaves the deques entirely and is re-enqueued only
//!   when the resource transitions and wakes it. Workers holding no
//!   runnable work park indefinitely on the injector condvar — there is no
//!   blind re-poll sweep and no idle nap; the old `PENDING_NAP` /
//!   `IDLE_PARK` backoff constants are gone.
//! * **Lost-wakeup protocol.** A resource transition racing between a
//!   task's last failed `try_*` and its waker registration must still wake
//!   the task. Resources with their own lock (queues, exchanges) register
//!   the waker *under the same lock* as the failed try, closing the window
//!   outright. Lock-free conditions (seal countdowns, cancellation,
//!   quiescence) go through a [`WakeSet`], whose wake-generation counter is
//!   read *before* the condition check and re-checked at registration: if a
//!   wake slipped in between, registration fails and the task re-polls
//!   ([`Poll::Yielded`]) instead of parking on a stale condition. The
//!   worker-level analogue — a job enqueued while a worker is deciding to
//!   park — is closed by a runnable-job count checked under the injector
//!   lock, which every enqueue path takes before notifying.
//! * **Per-worker deques plus work-stealing.** Each worker owns a deque;
//!   freshly spawned tasks land on a global injector, rescheduled and woken
//!   tasks on the worker that last ran them (locality), and an idle worker
//!   steals from its siblings before parking. Steals are counted
//!   ([`RuntimeMetrics::tasks_stolen`]) — the observable trace of the
//!   load-balancing the paper's shared-resource model assumes.
//! * **Scoped submission.** [`EngineRuntime::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack, and
//!   the scope does not return until every spawned task has completed (or
//!   panicked — the first panic is resent at the join, after all tasks
//!   finished). [`TaskGroup`]s let the orchestrating (non-worker) thread
//!   wait for a subset — the engine waits for its mappers before deciding
//!   whether the seal chain broke — while the rest keep running.
//! * **Admission.** [`EngineRuntime::admit`] gates *queries* (not tasks):
//!   at most `max_concurrent_queries` tickets are outstanding, and when the
//!   runtime is built with a global memory budget each ticket carves a
//!   tuple budget out of it — the per-query [`MemGauge`] hangs off the
//!   ticket, so a query's peak is measured against the slice it was
//!   granted. Admission blocks the *client* thread, never a pool worker;
//!   calling it from inside a task would deadlock the pool and is the one
//!   usage rule this module imposes. Event-driven callers use
//!   [`EngineRuntime::try_admit`] plus the [`EngineRuntime::admission_wake`]
//!   registry instead of blocking.
//!
//! Timers are the one legitimately *timed* wait left: [`TaskCx::sleep`]
//! arms an entry in a shared deadline heap, idle workers bound their park
//! by the earliest armed deadline, and every worker fires due timers at the
//! top of its loop — so a cadence task (the coordinator) wakes on schedule
//! even when every worker is parked, without any worker busy-polling.

use std::any::Any;
use std::collections::{BinaryHeap, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use super::morsel::MemGauge;
use super::pool::BatchPool;

/// What one task poll reports back to its worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poll {
    /// The task is finished; drop it and signal its scope.
    Ready,
    /// The task did useful work and has more; reschedule it.
    Yielded,
    /// The task cannot progress until some *other* event (a queue pop, an
    /// exchange push, a countdown, a timer) and has registered its
    /// [`Waker`] with that resource. The job is parked off the deques and
    /// re-enqueued by the wake. A `Pending` without any registration is
    /// tolerated (the worker falls back to rescheduling it like
    /// [`Poll::Yielded`]) but defeats event-driven parking — every blocking
    /// edge in the engine registers.
    Pending,
}

// ---------------------------------------------------------------------------
// Wakers
// ---------------------------------------------------------------------------

/// Waker lifecycle states (`WakerInner::state`).
const WAKER_RUNNING: u8 = 0;
/// The job is stored in the waker's slot, off the deques, awaiting a wake.
const WAKER_PARKED: u8 = 1;
/// A wake arrived while the task was being polled; consume it by re-running
/// the task instead of parking it.
const WAKER_NOTIFIED: u8 = 2;

struct WakerInner {
    state: AtomicU8,
    /// Did the current poll register this waker with any resource? Cleared
    /// at poll start; set by [`Waker::arm`]. A `Pending` poll that never
    /// armed is rescheduled rather than parked (nothing would wake it).
    armed: AtomicBool,
    /// The worker that last polled the job — wakes re-enqueue there.
    home: AtomicUsize,
    /// The parked job itself (plus when it parked, for `parked_time`).
    /// Invariant: `Some` whenever `state == WAKER_PARKED`; the slot is
    /// filled *before* the state CAS publishes `PARKED`.
    slot: Mutex<Option<(Job, Instant)>>,
    pool: Arc<PoolShared>,
}

/// The wake handle of one pool task. Clones are registered with blocking
/// resources; [`Waker::wake`] re-enqueues the parked job on its home
/// worker's deque and unparks a worker through the injector condvar.
///
/// Wakes are idempotent and may come from pool workers or client threads
/// alike. A wake that lands *during* a poll is latched (`NOTIFIED`) and
/// converts that poll's `Pending` into an immediate reschedule, so a
/// transition can never slip between a failed `try_*` and the park.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker")
            .field("state", &self.inner.state.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Waker {
    fn new(pool: Arc<PoolShared>) -> Self {
        Waker {
            inner: Arc::new(WakerInner {
                state: AtomicU8::new(WAKER_RUNNING),
                armed: AtomicBool::new(false),
                home: AtomicUsize::new(0),
                slot: Mutex::new(None),
                pool,
            }),
        }
    }

    /// Marks that the current poll registered this waker somewhere, making
    /// a `Pending` return eligible for parking. Resource registries
    /// (queues, exchanges, [`WakeSet`]) call this for you.
    pub fn arm(&self) {
        self.inner.armed.store(true, Ordering::Relaxed);
    }

    fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Relaxed)
    }

    /// Do `self` and `other` wake the same task? (Registries dedupe on
    /// this, mirroring `std::task::Waker::will_wake`.)
    pub fn will_wake(&self, other: &Waker) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Registers this waker in a resource's waiter list (deduped per task)
    /// and arms it. Must be called under the resource's own mutex — that
    /// lock, shared with the failed `try_*`, is what closes the
    /// lost-wakeup window for mutex-guarded resources.
    pub fn register_in(&self, list: &mut Vec<Waker>) {
        if !list.iter().any(|w| w.will_wake(self)) {
            list.push(self.clone());
        }
        self.arm();
    }

    /// Wakes the task: a parked job is re-enqueued on its home worker's
    /// deque; a wake during a poll is latched so that poll's `Pending`
    /// reschedules instead of parking; a wake of an already-woken (or
    /// completed) task is a no-op. Returns whether a parked job was
    /// actually re-enqueued.
    pub fn wake(&self) -> bool {
        let inner = &self.inner;
        loop {
            match inner.state.compare_exchange(
                WAKER_PARKED,
                WAKER_RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    let (job, since) = inner
                        .slot
                        .lock()
                        .expect("waker slot poisoned")
                        .take()
                        .expect("parked waker without a stored job");
                    let pool = &inner.pool;
                    pool.wakeups.fetch_add(1, Ordering::Relaxed);
                    pool.parked_nanos
                        .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    let home = inner.home.load(Ordering::Relaxed) % pool.deques.len();
                    enqueue_local(pool, home, job);
                    return true;
                }
                Err(state) if state == WAKER_RUNNING => {
                    if inner
                        .state
                        .compare_exchange(
                            WAKER_RUNNING,
                            WAKER_NOTIFIED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        return false;
                    }
                    // Lost the race to a concurrent park or wake; re-read.
                }
                Err(_) => return false, // already NOTIFIED
            }
        }
    }

    /// Resets per-poll state before the job's closure runs: pin the home
    /// worker, clear the armed flag, and consume a notification aimed at
    /// the *previous* poll (this poll will re-observe whatever that wake
    /// advertised).
    fn begin_poll(&self, me: usize) {
        self.inner.home.store(me, Ordering::Relaxed);
        self.inner.armed.store(false, Ordering::Relaxed);
        let _ = self.inner.state.compare_exchange(
            WAKER_NOTIFIED,
            WAKER_RUNNING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Parks `job` in the waker's slot. Fails — handing the job back for an
    /// immediate reschedule — if a wake latched during the poll. The slot
    /// is filled before the state CAS so a concurrent [`Waker::wake`] that
    /// observes `PARKED` always finds the job.
    fn try_park(&self, job: Job) -> Result<(), Job> {
        let inner = &self.inner;
        *inner.slot.lock().expect("waker slot poisoned") = Some((job, Instant::now()));
        match inner.state.compare_exchange(
            WAKER_RUNNING,
            WAKER_PARKED,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Ok(()),
            Err(_) => {
                // NOTIFIED during the poll: the wake-worthy transition
                // already happened; take the job back and re-run it.
                inner.state.store(WAKER_RUNNING, Ordering::Release);
                let (job, _) = inner
                    .slot
                    .lock()
                    .expect("waker slot poisoned")
                    .take()
                    .expect("job stored just above");
                Err(job)
            }
        }
    }
}

/// A registry of parked waiters on one lock-free condition (a seal
/// countdown hitting zero, cancellation, quiescence). The embedded
/// *wake generation* closes the check-then-register race: read
/// [`WakeSet::generation`] **before** testing the condition, then hand it
/// to [`WakeSet::register`] — if any wake fired in between, registration
/// refuses and the caller re-polls instead of parking on a state change it
/// missed. Resources guarded by their own mutex (queues, exchanges) don't
/// need the generation dance: they register under the same lock as the
/// failed try.
pub struct WakeSet {
    inner: Mutex<WakeSetInner>,
}

struct WakeSetInner {
    generation: u64,
    waiters: Vec<Waker>,
}

impl WakeSet {
    pub const fn new() -> Self {
        WakeSet {
            inner: Mutex::new(WakeSetInner {
                generation: 0,
                waiters: Vec::new(),
            }),
        }
    }

    /// The current wake generation. Read it *before* checking the condition
    /// this set guards.
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("wake set poisoned").generation
    }

    /// Registers `waker` to be woken by the next [`WakeSet::wake_all`],
    /// unless the generation moved since `generation` was read — then no
    /// registration happens and `false` is returned: the condition may have
    /// transitioned, re-poll instead of parking. Duplicate registrations of
    /// the same task are coalesced.
    pub fn register(&self, waker: &Waker, generation: u64) -> bool {
        let mut inner = self.inner.lock().expect("wake set poisoned");
        if inner.generation != generation {
            return false;
        }
        if !inner.waiters.iter().any(|w| w.will_wake(waker)) {
            inner.waiters.push(waker.clone());
        }
        drop(inner);
        waker.arm();
        true
    }

    /// Advances the generation and wakes every registered waiter. Safe from
    /// any thread; waiters that already completed ignore the wake.
    pub fn wake_all(&self) {
        let waiters = {
            let mut inner = self.inner.lock().expect("wake set poisoned");
            inner.generation += 1;
            std::mem::take(&mut inner.waiters)
        };
        for w in &waiters {
            w.wake();
        }
    }
}

impl Default for WakeSet {
    fn default() -> Self {
        WakeSet::new()
    }
}

/// A cancellation flag that *wakes* its waiters. Under event-driven
/// parking a plain `AtomicBool` cannot cancel a parked task — nothing
/// re-polls it — so every park site in the engine dual-registers with the
/// query's `CancelToken`: the resource wake delivers progress, the cancel
/// wake delivers the abort.
#[derive(Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    wake: WakeSet,
}

impl CancelToken {
    pub const fn new() -> Self {
        CancelToken {
            cancelled: AtomicBool::new(false),
            wake: WakeSet::new(),
        }
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Raises the flag and wakes every task parked through
    /// [`CancelToken::park`]. Idempotent; callable from client threads.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
        self.wake.wake_all();
    }

    /// Registers `waker` to be woken on cancellation. Returns `false` — do
    /// **not** park, re-poll instead — if the token is already cancelled
    /// (or a cancel raced the registration).
    pub fn park(&self, waker: &Waker) -> bool {
        let generation = self.wake.generation();
        if self.is_cancelled() {
            return false;
        }
        self.wake.register(waker, generation)
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// One armed [`TaskCx::sleep`] deadline (nanoseconds since the pool's
/// epoch). Ordered for a min-heap on (deadline, seq).
struct TimerEntry {
    deadline: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Timers {
    heap: BinaryHeap<TimerEntry>,
    seq: u64,
}

/// Sentinel for "no timer armed" in `PoolShared::next_deadline`.
const NO_DEADLINE: u64 = u64::MAX;

/// The per-poll context handed to every task closure: its [`Waker`] (to
/// register with blocking resources), the pool's timer wheel, and the
/// polling worker's batch-recycling pool.
pub struct TaskCx<'a> {
    waker: &'a Waker,
    pool: &'a BatchPool,
}

impl TaskCx<'_> {
    /// This task's wake handle, for registering with blocking resources.
    pub fn waker(&self) -> &Waker {
        self.waker
    }

    /// The polling worker's [`BatchPool`]: recycled `ColumnBatch`
    /// allocations for fragment, outbox and spill-reload buffers.
    pub fn pool(&self) -> &BatchPool {
        self.pool
    }

    /// Arms a one-shot timer `after` from now and marks the waker armed:
    /// return `Pending` and the task is woken when the deadline passes.
    /// This is the pool's only sanctioned timed wait — idle workers bound
    /// their park by the earliest armed deadline, so the wake needs no
    /// dedicated timer thread.
    pub fn sleep(&self, after: Duration) {
        let pool = &self.waker.inner.pool;
        let deadline = pool
            .nanos_since_epoch()
            .saturating_add(after.as_nanos().min(u64::MAX as u128) as u64);
        {
            let mut timers = pool.timers.lock().expect("timers poisoned");
            timers.seq += 1;
            let seq = timers.seq;
            timers.heap.push(TimerEntry {
                deadline,
                seq,
                waker: self.waker.clone(),
            });
            // Published under the timers lock (fire_due_timers recomputes
            // under the same lock), read lock-free by the hot path.
            if deadline < pool.next_deadline.load(Ordering::Relaxed) {
                pool.next_deadline.store(deadline, Ordering::Release);
            }
        }
        self.waker.arm();
        // Parked workers must re-derive their park timeout from the new
        // deadline; the injector lock orders this against their
        // runnable-check-then-wait.
        drop(pool.injector.lock().expect("injector poisoned"));
        pool.work_cv.notify_all();
    }
}

/// Pops and wakes every timer whose deadline has passed. Called by every
/// worker at the top of its loop; the lock-free `next_deadline` check makes
/// the no-timers-due case two atomic loads.
fn fire_due_timers(shared: &PoolShared) {
    let now = shared.nanos_since_epoch();
    if shared.next_deadline.load(Ordering::Acquire) > now {
        return;
    }
    let mut due = Vec::new();
    {
        let mut timers = shared.timers.lock().expect("timers poisoned");
        while timers.heap.peek().is_some_and(|e| e.deadline <= now) {
            due.push(timers.heap.pop().expect("peeked entry"));
        }
        let next = timers.heap.peek().map_or(NO_DEADLINE, |e| e.deadline);
        shared.next_deadline.store(next, Ordering::Release);
    }
    for entry in &due {
        entry.waker.wake();
    }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// Construction knobs for [`EngineRuntime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Pool size: the total OS threads executing engine tasks, for every
    /// query sharing this runtime.
    pub workers: usize,
    /// Admission limit: queries holding a [`QueryTicket`] at once. Further
    /// `admit` calls block (on the client thread) until a ticket drops.
    pub max_concurrent_queries: usize,
    /// Optional runtime-global memory budget, in tuples. Each admitted
    /// query carves its slice out of this (see [`EngineRuntime::admit`]);
    /// `None` disables budget gating (tickets still carry a gauge).
    pub memory_budget_tuples: Option<u64>,
    /// Benchmark baseline knob: when set, a task that polls `Pending` is
    /// re-queued after a nap of this many microseconds instead of parking
    /// on its waker — the pre-waker `PENDING_NAP` poll loop, kept only so
    /// `latency_bench` can A/B the two schedulers on one binary. `None`
    /// (the default everywhere) is event-driven parking.
    pub pending_nap_micros: Option<u64>,
}

impl RuntimeConfig {
    /// A pool of `workers` threads, admitting up to `workers` concurrent
    /// queries (at least 2 so pipelines of two operators can always
    /// overlap), with no memory budget.
    pub fn for_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        RuntimeConfig {
            workers,
            max_concurrent_queries: workers.max(2),
            memory_budget_tuples: None,
            pending_nap_micros: None,
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeMetrics {
    pub workers: usize,
    /// Tasks submitted over the runtime's lifetime.
    pub tasks_spawned: u64,
    /// Tasks that ran to `Ready` (or panicked).
    pub tasks_completed: u64,
    /// Tasks a worker took from a *sibling's* deque — the work-stealing
    /// traffic that keeps skewed task batches from stranding idle workers.
    pub tasks_stolen: u64,
    /// Individual `poll` invocations across all tasks.
    pub polls: u64,
    /// Polls that returned [`Poll::Pending`]. Under event-driven parking a
    /// genuine block costs exactly one of these (register, park, wake);
    /// under the old nap loop every blocked task burned one per 10µs
    /// sweep — the headline ratio of the waker change.
    pub spurious_polls: u64,
    /// Parked jobs re-enqueued by a [`Waker::wake`].
    pub wakeups: u64,
    /// Summed wall time parked jobs spent waiting for their wake.
    pub parked_secs: f64,
    /// Summed wall time workers spent inside task polls.
    pub busy_secs: f64,
    /// Wall time since the runtime was built.
    pub uptime_secs: f64,
    /// Queries admitted so far.
    pub admissions: u64,
    /// Summed time queries waited in the admission queue.
    pub admission_wait_secs: f64,
    /// Queries currently holding a ticket.
    pub active_queries: usize,
    /// Tuple budget currently carved out by admitted queries.
    pub budget_in_use_tuples: u64,
}

impl RuntimeMetrics {
    /// Fraction of the pool's capacity spent inside task polls since the
    /// runtime was built (1.0 = every worker busy the whole time).
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.uptime_secs;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy_secs / capacity).min(1.0)
        }
    }
}

/// One schedulable unit: the type-erased task closure, the completion
/// hooks of the scope (and optional group) that spawned it, and its
/// [`Waker`].
///
/// The closure's true lifetime is the spawning scope's `'env`; it is
/// transmuted to `'static` so it can sit in the pool's queues. Soundness
/// rests on the scope invariant: [`EngineRuntime::scope`] does not return
/// until `outstanding == 0`, and a job's closure is dropped *before* its
/// completion is signalled, so no job can touch (or drop) its borrows
/// after the borrowed stack frame is gone. A *parked* job still counts as
/// outstanding (the waker's slot owns it), so the invariant holds across
/// parks.
struct Job {
    run: Box<dyn FnMut(&TaskCx<'_>) -> Poll + Send + 'static>,
    scope: Arc<ScopeSync>,
    group: Option<Arc<GroupSync>>,
    waker: Waker,
}

struct ScopeSync {
    state: Mutex<ScopeState>,
    cv: Condvar,
}

struct ScopeState {
    outstanding: usize,
    /// First panic payload from any task of this scope.
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeSync {
    fn new() -> Self {
        ScopeSync {
            state: Mutex::new(ScopeState {
                outstanding: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn register(&self) {
        self.state.lock().expect("scope poisoned").outstanding += 1;
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("scope poisoned");
        st.outstanding -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.outstanding == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_all(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("scope poisoned");
        while st.outstanding > 0 {
            st = self.cv.wait(st).expect("scope poisoned");
        }
        st.panic.take()
    }
}

struct GroupSync {
    outstanding: Mutex<usize>,
    cv: Condvar,
}

/// A handle over a subset of a scope's tasks, so the orchestrating thread
/// can wait for just that subset (the engine waits for its mappers while
/// reducers and the coordinator keep running). Waiting from *inside* a
/// pool task would deadlock the pool; only the scope's caller thread may
/// wait.
pub struct TaskGroup {
    sync: Arc<GroupSync>,
}

impl TaskGroup {
    /// Blocks the calling (non-worker) thread until every task spawned
    /// into this group has completed.
    pub fn wait(&self) {
        let mut n = self.sync.outstanding.lock().expect("group poisoned");
        while *n > 0 {
            n = self.sync.cv.wait(n).expect("group poisoned");
        }
    }
}

struct Admission {
    active: usize,
    budget_in_use: u64,
}

struct PoolShared {
    /// Per-worker deques. Plain mutexed deques, not lock-free Chase–Lev:
    /// every slot holds a coarse unit of work (a morsel route, a queue
    /// drain), so contention on these locks is noise next to the work.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Global submission queue; also the condvar workers park on.
    injector: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Jobs currently sitting in *any* deque or the injector (not parked,
    /// not mid-poll). Checked under the injector lock before a worker
    /// parks: every enqueue path bumps this, then takes and releases the
    /// injector lock before notifying, so a worker can never park with a
    /// runnable job it failed to observe.
    runnable: AtomicUsize,
    /// Armed [`TaskCx::sleep`] deadlines (min-heap) …
    timers: Mutex<Timers>,
    /// … and the earliest of them, cached for lock-free checks
    /// ([`NO_DEADLINE`] when the heap is empty). Idle workers bound their
    /// park by this.
    next_deadline: AtomicU64,
    /// Zero point of the timer clock.
    epoch: Instant,
    /// [`RuntimeConfig::pending_nap_micros`] as a duration: `Some` switches
    /// the worker loop's `Pending` handling from waker parking to the
    /// legacy nap-and-requeue poll loop (benchmark baseline only).
    pending_nap: Option<Duration>,
    // Counters (all relaxed: they are metrics, never synchronization).
    tasks_spawned: AtomicU64,
    tasks_completed: AtomicU64,
    tasks_stolen: AtomicU64,
    polls: AtomicU64,
    spurious_polls: AtomicU64,
    wakeups: AtomicU64,
    parked_nanos: AtomicU64,
    busy_nanos: AtomicU64,
    admissions: AtomicU64,
    admission_wait_nanos: AtomicU64,
    admission: Mutex<Admission>,
    admission_cv: Condvar,
    /// Waker registry for admission slots: woken whenever a ticket drops,
    /// so a task-side [`EngineRuntime::try_admit`] retry loop parks instead
    /// of polling.
    admission_wake: WakeSet,
}

impl PoolShared {
    fn nanos_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Enqueues a runnable job on worker `to`'s deque and unparks a worker.
/// The empty acquire/release of the injector lock before the notify is the
/// lost-wakeup fence: a parker holds that lock from its runnable-count
/// check through its condvar wait, so either it sees the bumped count or
/// the notification reaches its wait.
fn enqueue_local(pool: &PoolShared, to: usize, job: Job) {
    pool.runnable.fetch_add(1, Ordering::Relaxed);
    pool.deques[to]
        .lock()
        .expect("deque poisoned")
        .push_back(job);
    drop(pool.injector.lock().expect("injector poisoned"));
    pool.work_cv.notify_one();
}

/// The persistent shared worker-pool runtime (see the module docs). Build
/// one per process — or per experiment, when a benchmark wants a pool of a
/// specific size — and pass it to every `run_operator` / `run_plan` call;
/// [`EngineRuntime::global`] offers a lazily built host-sized default.
///
/// Dropping the runtime shuts the pool down (all scopes have necessarily
/// completed first, because they borrow the runtime).
pub struct EngineRuntime {
    shared: Arc<PoolShared>,
    cfg: RuntimeConfig,
    started: Instant,
    workers: Vec<JoinHandle<()>>,
}

impl EngineRuntime {
    /// A runtime with [`RuntimeConfig::for_workers`] defaults.
    pub fn new(workers: usize) -> Self {
        Self::with_config(RuntimeConfig::for_workers(workers))
    }

    pub fn with_config(cfg: RuntimeConfig) -> Self {
        let workers = cfg.workers.max(1);
        // A zero budget would make admit's clamp-to-total panic (and means
        // "no query ever fits"); treat it as the smallest real budget.
        let memory_budget_tuples = cfg.memory_budget_tuples.map(|t| t.max(1));
        let shared = Arc::new(PoolShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            runnable: AtomicUsize::new(0),
            timers: Mutex::new(Timers {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            next_deadline: AtomicU64::new(NO_DEADLINE),
            epoch: Instant::now(),
            pending_nap: cfg.pending_nap_micros.map(Duration::from_micros),
            tasks_spawned: AtomicU64::new(0),
            tasks_completed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            spurious_polls: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            parked_nanos: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            admission_wait_nanos: AtomicU64::new(0),
            admission: Mutex::new(Admission {
                active: 0,
                budget_in_use: 0,
            }),
            admission_cv: Condvar::new(),
            admission_wake: WakeSet::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ewh-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        EngineRuntime {
            shared,
            cfg: RuntimeConfig {
                workers,
                memory_budget_tuples,
                ..cfg
            },
            started: Instant::now(),
            workers: handles,
        }
    }

    /// The process-wide default runtime, built on first use and sized to
    /// the host (at least 2 workers, so a two-operator pipeline overlaps
    /// even on a single-core machine).
    pub fn global() -> &'static EngineRuntime {
        static GLOBAL: OnceLock<EngineRuntime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(2)
                .max(2);
            EngineRuntime::new(workers)
        })
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Snapshot of the runtime counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        let sh = &self.shared;
        let adm = sh.admission.lock().expect("admission poisoned");
        RuntimeMetrics {
            workers: self.cfg.workers,
            tasks_spawned: sh.tasks_spawned.load(Ordering::Relaxed),
            tasks_completed: sh.tasks_completed.load(Ordering::Relaxed),
            tasks_stolen: sh.tasks_stolen.load(Ordering::Relaxed),
            polls: sh.polls.load(Ordering::Relaxed),
            spurious_polls: sh.spurious_polls.load(Ordering::Relaxed),
            wakeups: sh.wakeups.load(Ordering::Relaxed),
            parked_secs: sh.parked_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            busy_secs: sh.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            uptime_secs: self.started.elapsed().as_secs_f64(),
            admissions: sh.admissions.load(Ordering::Relaxed),
            admission_wait_secs: sh.admission_wait_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            active_queries: adm.active,
            budget_in_use_tuples: adm.budget_in_use,
        }
    }

    /// The slot/budget computation shared by [`EngineRuntime::admit`] and
    /// [`EngineRuntime::try_admit`]: what this query would be granted.
    fn admission_grant(&self, requested_tuples: Option<u64>) -> (Option<u64>, u64, usize) {
        let max_q = self.cfg.max_concurrent_queries.max(1);
        let budget = match self.cfg.memory_budget_tuples {
            Some(total) => Some(match requested_tuples {
                Some(r) => r.clamp(1, total),
                None => (total / max_q as u64).max(1),
            }),
            None => requested_tuples,
        };
        // Only a budget-gated runtime carves anything: a bare request on an
        // un-budgeted runtime is advisory (it sizes the ticket's
        // over-budget check) and must not show up as budget "in use".
        let carved = if self.cfg.memory_budget_tuples.is_some() {
            budget.unwrap_or(0)
        } else {
            0
        };
        (budget, carved, max_q)
    }

    fn admission_blocked(&self, adm: &Admission, carved: u64, max_q: usize) -> bool {
        let slots_full = adm.active >= max_q;
        // Budget gating only defers while someone else holds budget to
        // return — an empty pool always admits, so one oversized query
        // can never wedge the queue.
        let budget_full = match self.cfg.memory_budget_tuples {
            Some(total) => adm.active > 0 && adm.budget_in_use + carved > total,
            None => false,
        };
        slots_full || budget_full
    }

    fn issue_ticket(&self, budget: Option<u64>, carved: u64, wait: Duration) -> QueryTicket<'_> {
        let sh = &self.shared;
        sh.admissions.fetch_add(1, Ordering::Relaxed);
        sh.admission_wait_nanos
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        QueryTicket {
            rt: self,
            budget_tuples: budget,
            carved,
            gauge: MemGauge::default(),
            wait,
            spill_dir: OnceLock::new(),
        }
    }

    /// Admits one query, blocking the *client* thread until an admission
    /// slot — and, under a global memory budget, enough unreserved budget —
    /// is available. `requested_tuples` is the query's own estimate (e.g.
    /// its configured memory capacity); with a global budget and no
    /// request, the query gets an equal `total / max_concurrent` slice. A
    /// request larger than the whole budget is clamped to it rather than
    /// rejected, and waits for the pool to drain.
    ///
    /// Must never be called from inside a pool task (it would park the
    /// worker the unblocking query needs) — tasks use
    /// [`EngineRuntime::try_admit`] with the [`EngineRuntime::admission_wake`]
    /// registry instead.
    pub fn admit(&self, requested_tuples: Option<u64>) -> QueryTicket<'_> {
        let start = Instant::now();
        let sh = &self.shared;
        let (budget, carved, max_q) = self.admission_grant(requested_tuples);
        let mut adm = sh.admission.lock().expect("admission poisoned");
        while self.admission_blocked(&adm, carved, max_q) {
            adm = sh.admission_cv.wait(adm).expect("admission poisoned");
        }
        adm.active += 1;
        adm.budget_in_use += carved;
        drop(adm);
        self.issue_ticket(budget, carved, start.elapsed())
    }

    /// Non-blocking [`EngineRuntime::admit`]: `None` when no slot (or
    /// budget) is free right now. Event-driven callers read
    /// [`EngineRuntime::admission_wake`]'s generation before this call and
    /// register on failure — every ticket drop wakes that set.
    pub fn try_admit(&self, requested_tuples: Option<u64>) -> Option<QueryTicket<'_>> {
        let sh = &self.shared;
        let (budget, carved, max_q) = self.admission_grant(requested_tuples);
        let mut adm = sh.admission.lock().expect("admission poisoned");
        if self.admission_blocked(&adm, carved, max_q) {
            return None;
        }
        adm.active += 1;
        adm.budget_in_use += carved;
        drop(adm);
        Some(self.issue_ticket(budget, carved, Duration::ZERO))
    }

    /// The waker registry behind [`EngineRuntime::try_admit`]: woken on
    /// every [`QueryTicket`] drop.
    pub fn admission_wake(&self) -> &WakeSet {
        &self.shared.admission_wake
    }

    /// Runs `f` with a [`RuntimeScope`] through which borrowed tasks can be
    /// spawned onto the pool; returns only after every spawned task
    /// completed. Mirrors `std::thread::scope`: if a task panicked, the
    /// first panic is resent here (after all tasks finished); if `f` itself
    /// panics, the scope still waits before unwinding.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'s> FnOnce(&'s RuntimeScope<'s, 'env>) -> R,
    {
        let scope = RuntimeScope {
            rt: self,
            sync: Arc::new(ScopeSync::new()),
            _env: PhantomData,
            _scope: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let task_panic = scope.sync.wait_all();
        match result {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                if let Some(p) = task_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    fn inject(&self, job: Job) {
        let sh = &self.shared;
        sh.tasks_spawned.fetch_add(1, Ordering::Relaxed);
        sh.runnable.fetch_add(1, Ordering::Relaxed);
        sh.injector
            .lock()
            .expect("injector poisoned")
            .push_back(job);
        sh.work_cv.notify_one();
    }
}

impl Drop for EngineRuntime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Workers park indefinitely now: the store must be ordered against
        // their check-then-wait, which holds the injector lock.
        drop(self.shared.injector.lock().expect("injector poisoned"));
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// An admitted query's handle: its carved memory budget and the per-query
/// [`MemGauge`] the engine charges. Dropping the ticket releases the
/// admission slot and returns the budget to the runtime.
pub struct QueryTicket<'rt> {
    rt: &'rt EngineRuntime,
    budget_tuples: Option<u64>,
    /// Tuples actually reserved against the runtime's global budget
    /// (0 on an un-budgeted runtime, where requests are advisory).
    carved: u64,
    gauge: MemGauge,
    wait: Duration,
    /// Lazily named per-query spill directory; removed wholesale when the
    /// ticket drops (success, cancel and panic paths alike), so spilled
    /// runs can never outlive their query.
    spill_dir: OnceLock<PathBuf>,
}

impl QueryTicket<'_> {
    /// The per-query gauge; pass it to the engine so this query's peak is
    /// measured against its own budget slice.
    pub fn gauge(&self) -> &MemGauge {
        &self.gauge
    }

    /// Tuple budget carved for this query (`None`: admission was not
    /// budget-gated and the query made no request).
    pub fn budget_tuples(&self) -> Option<u64> {
        self.budget_tuples
    }

    /// How long this query sat in the admission queue.
    pub fn admission_wait_secs(&self) -> f64 {
        self.wait.as_secs_f64()
    }

    /// Did the query's realized peak exceed its carved budget?
    pub fn over_budget(&self) -> bool {
        self.budget_tuples
            .map(|b| self.gauge.peak_tuples() > b)
            .unwrap_or(false)
    }

    /// This query's private spill directory, a uniquely named child of
    /// `base` (the system temp dir when `None`). The name is fixed on
    /// first call; nothing is created on disk here — the engine's spill
    /// writer makes the directory on the first actual spill — but whatever
    /// ends up inside is removed when the ticket drops.
    pub fn spill_dir(&self, base: Option<&Path>) -> &Path {
        self.spill_dir.get_or_init(|| {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            // A pid alone is not unique across time: a worker process that
            // fork-spawns after a sibling died can recycle its pid while
            // the dead sibling's spill directory still exists (or worse,
            // while a survivor still reads from it). The startup nonce —
            // wall-clock nanos mixed with ASLR entropy, fixed once per
            // process — keeps directory names distinct across pid reuse.
            static NONCE: OnceLock<u64> = OnceLock::new();
            let nonce = *NONCE.get_or_init(|| {
                let clock = std::time::SystemTime::now()
                    .duration_since(std::time::SystemTime::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0);
                let aslr = &NONCE as *const _ as u64;
                clock ^ aslr.rotate_left(32)
            });
            let base = base
                .map(Path::to_path_buf)
                .unwrap_or_else(std::env::temp_dir);
            base.join(format!(
                "ewh-spill-{}-{:016x}-{}",
                std::process::id(),
                nonce,
                SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        })
    }
}

impl Drop for QueryTicket<'_> {
    fn drop(&mut self) {
        // Tmpfile hygiene: the spill directory (if any run was ever
        // written) dies with the ticket, on every exit path.
        if let Some(dir) = self.spill_dir.get() {
            let _ = std::fs::remove_dir_all(dir);
        }
        let sh = &self.rt.shared;
        let mut adm = sh.admission.lock().expect("admission poisoned");
        adm.active -= 1;
        adm.budget_in_use -= self.carved;
        drop(adm);
        sh.admission_cv.notify_all();
        // A freed slot is a resource transition like any other: wake tasks
        // parked on try_admit.
        sh.admission_wake.wake_all();
    }
}

/// Scoped task submission handle (see [`EngineRuntime::scope`]). The two
/// lifetimes mirror `std::thread::Scope`: `'scope` is the scope's own
/// region, `'env` the environment tasks may borrow from.
pub struct RuntimeScope<'scope, 'env: 'scope> {
    rt: &'scope EngineRuntime,
    sync: Arc<ScopeSync>,
    _env: PhantomData<&'env mut &'env ()>,
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'env> RuntimeScope<'scope, 'env> {
    /// Spawns one task onto the pool. The closure is polled repeatedly
    /// until it returns [`Poll::Ready`]; it must never block the worker on
    /// another task's progress — register the poll's [`TaskCx::waker`]
    /// with the blocking resource and return [`Poll::Pending`] instead.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnMut(&TaskCx<'_>) -> Poll + Send + 'env,
    {
        self.spawn_impl(None, f);
    }

    /// A new (empty) task group for [`RuntimeScope::spawn_in`].
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            sync: Arc::new(GroupSync {
                outstanding: Mutex::new(0),
                cv: Condvar::new(),
            }),
        }
    }

    /// Spawns a task whose completion also counts toward `group`.
    pub fn spawn_in<F>(&self, group: &TaskGroup, f: F)
    where
        F: FnMut(&TaskCx<'_>) -> Poll + Send + 'env,
    {
        self.spawn_impl(Some(Arc::clone(&group.sync)), f);
    }

    fn spawn_impl<F>(&self, group: Option<Arc<GroupSync>>, f: F)
    where
        F: FnMut(&TaskCx<'_>) -> Poll + Send + 'env,
    {
        let boxed: Box<dyn FnMut(&TaskCx<'_>) -> Poll + Send + 'env> = Box::new(f);
        // SAFETY: the closure only ever runs — and is dropped — before
        // `scope` returns (ScopeSync::wait_all), so its `'env` borrows are
        // live for every use. See the `Job` docs.
        let boxed: Box<dyn FnMut(&TaskCx<'_>) -> Poll + Send + 'static> =
            unsafe { std::mem::transmute(boxed) };
        self.sync.register();
        if let Some(g) = &group {
            *g.outstanding.lock().expect("group poisoned") += 1;
        }
        self.rt.inject(Job {
            run: boxed,
            scope: Arc::clone(&self.sync),
            group,
            waker: Waker::new(Arc::clone(&self.rt.shared)),
        });
    }
}

fn complete_job(shared: &PoolShared, job: Job, panic: Option<Box<dyn Any + Send>>) {
    let Job {
        run, scope, group, ..
    } = job;
    // Drop the task closure *before* signalling: the moment the scope's
    // counter hits zero the borrowed stack frame may unwind.
    drop(run);
    if let Some(g) = group {
        let mut n = g.outstanding.lock().expect("group poisoned");
        *n -= 1;
        if *n == 0 {
            g.cv.notify_all();
        }
    }
    shared.tasks_completed.fetch_add(1, Ordering::Relaxed);
    scope.complete(panic);
}

/// Picks the next job for worker `me`: own deque first (locality), then
/// the injector (fresh work), then a sweep over sibling deques (stealing).
fn next_job(shared: &PoolShared, me: usize) -> Option<Job> {
    if let Some(job) = shared.deques[me]
        .lock()
        .expect("deque poisoned")
        .pop_front()
    {
        shared.runnable.fetch_sub(1, Ordering::Relaxed);
        return Some(job);
    }
    steal_job(shared, me)
}

/// Fresh or stealable work from anywhere but `me`'s own deque.
fn steal_job(shared: &PoolShared, me: usize) -> Option<Job> {
    if let Some(job) = shared
        .injector
        .lock()
        .expect("injector poisoned")
        .pop_front()
    {
        shared.runnable.fetch_sub(1, Ordering::Relaxed);
        return Some(job);
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(job) = shared.deques[victim]
            .lock()
            .expect("deque poisoned")
            .pop_back()
        {
            shared.runnable.fetch_sub(1, Ordering::Relaxed);
            shared.tasks_stolen.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &Arc<PoolShared>, me: usize) {
    // Nap-mode emulation state: consecutive `Pending` polls. The legacy
    // loop napped once per full sweep of the local deque (when the streak
    // covered every local job and nothing was stealable), not once per
    // blocked poll — napping per poll makes the baseline `n_blocked` times
    // slower than the loop it emulates, and under open-loop arrivals that
    // compounds (slower service → deeper backlog → more blocked tasks per
    // sweep → slower still) into a runaway crawl.
    let mut pending_streak = 0usize;
    // This worker's batch-recycling stash; every task polled here shares
    // it through the `TaskCx`, so buffers circulate across the tasks that
    // happen to land on this worker.
    let pool = BatchPool::new();
    loop {
        fire_due_timers(shared);
        let Some(mut job) = next_job(shared, me) else {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = shared.injector.lock().expect("injector poisoned");
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Every enqueue bumps `runnable` *before* acquiring this lock
            // to notify, so a zero read here means any job that appears
            // later comes with a notification we cannot miss.
            if shared.runnable.load(Ordering::Acquire) == 0 {
                let next = shared.next_deadline.load(Ordering::Acquire);
                if next == NO_DEADLINE {
                    // Nothing runnable, no timer armed: park until an
                    // enqueue (wake, spawn, requeue) or an arming sleep
                    // notifies.
                    drop(shared.work_cv.wait(guard).expect("injector poisoned"));
                } else {
                    let now = shared.nanos_since_epoch();
                    if next > now {
                        let _ = shared
                            .work_cv
                            .wait_timeout(guard, Duration::from_nanos(next - now))
                            .expect("injector poisoned");
                    }
                    // else: a timer is already due — loop and fire it.
                }
            }
            pending_streak = 0;
            continue;
        };
        let start = Instant::now();
        job.waker.begin_poll(me);
        let waker = job.waker.clone();
        let cx = TaskCx {
            waker: &waker,
            pool: &pool,
        };
        let polled = catch_unwind(AssertUnwindSafe(|| (job.run)(&cx)));
        shared
            .busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.polls.fetch_add(1, Ordering::Relaxed);
        match polled {
            Ok(Poll::Ready) => {
                complete_job(shared, job, None);
                pending_streak = 0;
            }
            Err(panic) => {
                complete_job(shared, job, Some(panic));
                pending_streak = 0;
            }
            Ok(Poll::Yielded) => {
                enqueue_local(shared, me, job);
                pending_streak = 0;
            }
            Ok(Poll::Pending) => {
                shared.spurious_polls.fetch_add(1, Ordering::Relaxed);
                if let Some(nap) = shared.pending_nap {
                    // Legacy poll-loop emulation (benchmark baseline): the
                    // task is requeued *first* so a sibling can steal it
                    // meanwhile, and the worker never parks. Like the old
                    // loop, the nap lands only once the `Pending` streak
                    // covers the whole local deque and nothing is stealable
                    // — one nap per sweep of blocked tasks, not one per
                    // blocked poll. Registered wakers still fire but find
                    // the task queued and latch NOTIFIED, which the next
                    // `begin_poll` simply clears.
                    enqueue_local(shared, me, job);
                    pending_streak += 1;
                    let len = shared.deques[me].lock().expect("deque poisoned").len();
                    if pending_streak >= len {
                        if let Some(other) = steal_job(shared, me) {
                            shared.runnable.fetch_add(1, Ordering::Relaxed);
                            shared.deques[me]
                                .lock()
                                .expect("deque poisoned")
                                .push_front(other);
                        } else if !shared.shutdown.load(Ordering::Acquire) {
                            thread::sleep(nap);
                        }
                        pending_streak = 0;
                    }
                } else if waker.is_armed() {
                    if let Err(job) = waker.try_park(job) {
                        // A wake latched mid-poll: the awaited transition
                        // already happened, so run again instead.
                        enqueue_local(shared, me, job);
                    }
                } else {
                    // Pending without any registration: nothing would ever
                    // wake it, so fall back to rescheduling. Correct but
                    // poll-driven — engine tasks always register.
                    enqueue_local(shared, me, job);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let rt = EngineRuntime::new(3);
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..20 {
                let counter = &counter;
                let mut left = 3u32; // each task yields a few times first
                s.spawn(move |_| {
                    if left > 0 {
                        left -= 1;
                        return Poll::Yielded;
                    }
                    counter.fetch_add(1, Ordering::Relaxed);
                    Poll::Ready
                });
            }
        });
        assert_eq!(counter.into_inner(), 20);
        let m = rt.metrics();
        assert_eq!(m.tasks_spawned, 20);
        assert_eq!(m.tasks_completed, 20);
        assert!(m.polls >= 80, "each task polls at least 4 times");
    }

    #[test]
    fn parked_tasks_are_woken_by_their_registered_wake_set() {
        // A single-worker pool must still complete a dependency chain where
        // task B parks until task A flips a flag: B registers with a
        // WakeSet and parks off the deques, A runs, flips the flag and
        // wakes the set, B is re-enqueued and completes. This replaces the
        // old nap-and-re-poll loop — if the wake is lost, this test hangs.
        let rt = EngineRuntime::new(1);
        let flag = AtomicBool::new(false);
        let wake = WakeSet::new();
        rt.scope(|s| {
            {
                let (flag, wake) = (&flag, &wake);
                s.spawn(move |cx| {
                    // Generation before the condition check: a wake racing
                    // in between fails the registration and we re-poll.
                    let gen = wake.generation();
                    if flag.load(Ordering::Acquire) {
                        Poll::Ready
                    } else if wake.register(cx.waker(), gen) {
                        Poll::Pending
                    } else {
                        Poll::Yielded
                    }
                });
            }
            let (flag, wake) = (&flag, &wake);
            let mut spins = 5u32;
            s.spawn(move |_| {
                if spins > 0 {
                    spins -= 1;
                    return Poll::Yielded;
                }
                flag.store(true, Ordering::Release);
                wake.wake_all();
                Poll::Ready
            });
        });
        assert!(flag.into_inner());
        let m = rt.metrics();
        assert!(
            m.wakeups >= 1,
            "the parked task must be woken, not re-polled"
        );
        assert!(
            m.spurious_polls <= 3,
            "a parked task re-polls only on its wake, got {}",
            m.spurious_polls
        );
    }

    #[test]
    fn stale_generation_refuses_registration() {
        // If the wake fires between the condition check and the
        // registration, the stale generation must make register() refuse —
        // parking would sleep through a transition that already happened.
        let rt = EngineRuntime::new(1);
        let wake = WakeSet::new();
        let refused = AtomicBool::new(false);
        rt.scope(|s| {
            let (wake, refused) = (&wake, &refused);
            s.spawn(move |cx| {
                let gen = wake.generation();
                wake.wake_all(); // the race, made deterministic
                if wake.register(cx.waker(), gen) {
                    Poll::Pending
                } else {
                    refused.store(true, Ordering::Release);
                    Poll::Ready
                }
            });
        });
        assert!(refused.into_inner());
    }

    #[test]
    fn wakes_from_client_threads_unpark_and_time_the_park() {
        // The scope's caller thread (not a pool worker) wakes a parked
        // task after ~20ms; parked_secs must record the wait.
        let rt = EngineRuntime::new(2);
        let stop = AtomicBool::new(false);
        let wake = WakeSet::new();
        rt.scope(|s| {
            {
                let (stop, wake) = (&stop, &wake);
                s.spawn(move |cx| {
                    let gen = wake.generation();
                    if stop.load(Ordering::Acquire) {
                        Poll::Ready
                    } else if wake.register(cx.waker(), gen) {
                        Poll::Pending
                    } else {
                        Poll::Yielded
                    }
                });
            }
            thread::sleep(Duration::from_millis(20));
            stop.store(true, Ordering::Release);
            wake.wake_all();
        });
        let m = rt.metrics();
        assert!(m.wakeups >= 1);
        assert!(
            m.parked_secs >= 0.010,
            "the task parked ~20ms, recorded {}",
            m.parked_secs
        );
    }

    #[test]
    fn sleep_timers_wake_parked_workers() {
        let rt = EngineRuntime::new(1);
        let started = Instant::now();
        let mut slept = false;
        rt.scope(|s| {
            s.spawn(move |cx| {
                if slept {
                    Poll::Ready
                } else {
                    slept = true;
                    cx.sleep(Duration::from_millis(10));
                    Poll::Pending
                }
            });
        });
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "the timer must gate completion"
        );
        assert!(rt.metrics().wakeups >= 1, "timer expiry is a wake");
    }

    #[test]
    fn cancel_token_wakes_its_parked_waiters() {
        let rt = EngineRuntime::new(1);
        let token = CancelToken::new();
        let observed = AtomicBool::new(false);
        rt.scope(|s| {
            {
                let (token, observed) = (&token, &observed);
                s.spawn(move |cx| {
                    if token.is_cancelled() {
                        observed.store(true, Ordering::Release);
                        Poll::Ready
                    } else if token.park(cx.waker()) {
                        Poll::Pending
                    } else {
                        Poll::Yielded
                    }
                });
            }
            thread::sleep(Duration::from_millis(10));
            token.cancel();
        });
        assert!(observed.into_inner());
        assert!(token.is_cancelled());
    }

    #[test]
    fn unregistered_pending_is_rescheduled_not_stranded() {
        // A task that returns Pending without registering anywhere must
        // still complete (the worker falls back to rescheduling it).
        let rt = EngineRuntime::new(1);
        let mut naps = 3u32;
        rt.scope(|s| {
            s.spawn(move |_| {
                if naps > 0 {
                    naps -= 1;
                    Poll::Pending
                } else {
                    Poll::Ready
                }
            });
        });
        assert!(rt.metrics().spurious_polls >= 3);
    }

    #[test]
    fn groups_complete_independently_of_the_scope() {
        let rt = EngineRuntime::new(2);
        let stop = AtomicBool::new(false);
        let wake = WakeSet::new();
        rt.scope(|s| {
            // A long-runner that parks until told to exit.
            {
                let (stop, wake) = (&stop, &wake);
                s.spawn(move |cx| {
                    let gen = wake.generation();
                    if stop.load(Ordering::Acquire) {
                        Poll::Ready
                    } else if wake.register(cx.waker(), gen) {
                        Poll::Pending
                    } else {
                        Poll::Yielded
                    }
                });
            }
            let group = s.group();
            for _ in 0..4 {
                s.spawn_in(&group, |_| Poll::Ready);
            }
            group.wait(); // must return while the long-runner is parked
            stop.store(true, Ordering::Release);
            wake.wake_all();
        });
    }

    #[test]
    fn work_is_stolen_when_one_worker_hoards_tasks() {
        // All tasks yield many times; with several workers and one injector
        // the deques end up imbalanced enough that someone steals. This is
        // probabilistic in principle but deterministic in practice: the
        // first worker drains the injector into its own deque faster than
        // siblings wake.
        let rt = EngineRuntime::new(4);
        rt.scope(|s| {
            for _ in 0..64 {
                let mut left = 50u32;
                s.spawn(move |_| {
                    if left > 0 {
                        left -= 1;
                        std::hint::black_box(left);
                        Poll::Yielded
                    } else {
                        Poll::Ready
                    }
                });
            }
        });
        let m = rt.metrics();
        assert_eq!(m.tasks_completed, 64);
        assert!(m.busy_secs >= 0.0 && m.uptime_secs > 0.0);
        assert!(m.utilization() >= 0.0 && m.utilization() <= 1.0);
    }

    #[test]
    fn task_panic_propagates_at_the_scope_join() {
        let rt = EngineRuntime::new(2);
        let survived = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                let survived = &survived;
                s.spawn(move |_| {
                    survived.fetch_add(1, Ordering::Relaxed);
                    Poll::Ready
                });
                s.spawn(|_| panic!("task exploded"));
            });
        }));
        assert!(result.is_err(), "scope must resend the task panic");
        assert_eq!(survived.load(Ordering::Relaxed), 1);
        // The runtime survives a panicked task: later scopes still run.
        let after = AtomicUsize::new(0);
        rt.scope(|s| {
            let after = &after;
            s.spawn(move |_| {
                after.fetch_add(1, Ordering::Relaxed);
                Poll::Ready
            });
        });
        assert_eq!(after.into_inner(), 1);
    }

    #[test]
    fn admission_limits_concurrent_tickets() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 2,
            max_concurrent_queries: 1,
            memory_budget_tuples: None,
            pending_nap_micros: None,
        });
        let t1 = rt.admit(None);
        assert_eq!(rt.metrics().active_queries, 1);
        // A second admit must wait until t1 drops.
        thread::scope(|s| {
            let waiter = s.spawn(|| {
                let t2 = rt.admit(None);
                t2.admission_wait_secs()
            });
            thread::sleep(Duration::from_millis(20));
            drop(t1);
            let waited = waiter.join().expect("waiter panicked");
            assert!(
                waited >= 0.010,
                "second ticket should have waited ~20ms, waited {waited}"
            );
        });
        let m = rt.metrics();
        assert_eq!(m.admissions, 2);
        assert!(m.admission_wait_secs >= 0.010);
        assert_eq!(m.active_queries, 0);
    }

    #[test]
    fn try_admit_refuses_instead_of_blocking_and_drop_wakes_the_registry() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 1,
            memory_budget_tuples: None,
            pending_nap_micros: None,
        });
        let gen = rt.admission_wake().generation();
        let t1 = rt.try_admit(None).expect("empty pool admits");
        assert!(rt.try_admit(None).is_none(), "slot is taken");
        drop(t1);
        assert!(
            rt.admission_wake().generation() > gen,
            "ticket drop must advance the admission wake generation"
        );
        let t2 = rt.try_admit(None).expect("freed slot admits");
        drop(t2);
        assert_eq!(rt.metrics().admissions, 2);
    }

    #[test]
    fn budget_is_carved_and_returned() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 4,
            memory_budget_tuples: Some(1000),
            pending_nap_micros: None,
        });
        let a = rt.admit(Some(600));
        assert_eq!(a.budget_tuples(), Some(600));
        assert_eq!(rt.metrics().budget_in_use_tuples, 600);
        // Unrequested budget defaults to an equal share of the total.
        let b = rt.admit(None);
        assert_eq!(b.budget_tuples(), Some(250));
        // An over-sized request clamps to the whole budget instead of
        // deadlocking the queue.
        drop(a);
        drop(b);
        let c = rt.admit(Some(10_000));
        assert_eq!(c.budget_tuples(), Some(1000));
        c.gauge().add(1500);
        assert!(c.over_budget());
        drop(c);
        assert_eq!(rt.metrics().budget_in_use_tuples, 0);
    }

    #[test]
    fn ticket_spill_dirs_are_unique_and_removed_on_drop() {
        let rt = EngineRuntime::new(1);
        let a = rt.admit(None);
        let b = rt.admit(None);
        let da = a.spill_dir(None).to_path_buf();
        let db = b.spill_dir(None).to_path_buf();
        assert_ne!(da, db, "concurrent tickets must not share a spill dir");
        assert_eq!(
            a.spill_dir(None),
            da.as_path(),
            "name is fixed on first call"
        );
        assert!(!da.exists(), "nothing touches disk until a run is written");
        std::fs::create_dir_all(&da).expect("create spill dir");
        std::fs::write(da.join("run-0.spill"), b"x").expect("write run");
        drop(a);
        assert!(!da.exists(), "ticket drop removes the spill dir");
        drop(b);
    }

    #[test]
    fn zero_budget_runtimes_normalize_instead_of_panicking() {
        // A budget that rounds to zero (e.g. a sub-tuple byte capacity)
        // must not violate clamp's precondition inside admit.
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 1,
            memory_budget_tuples: Some(0),
            pending_nap_micros: None,
        });
        let t = rt.admit(Some(10));
        assert_eq!(t.budget_tuples(), Some(1));
        drop(t);
        assert_eq!(rt.metrics().budget_in_use_tuples, 0);
    }

    #[test]
    fn ungated_requests_do_not_count_as_carved_budget() {
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 1,
            max_concurrent_queries: 2,
            memory_budget_tuples: None,
            pending_nap_micros: None,
        });
        let t = rt.admit(Some(5000));
        // The request sizes the ticket's over-budget check but carves
        // nothing from a budget that does not exist.
        assert_eq!(t.budget_tuples(), Some(5000));
        assert_eq!(rt.metrics().budget_in_use_tuples, 0);
    }

    #[test]
    fn global_runtime_is_shared_and_sized_to_the_host() {
        let a = EngineRuntime::global();
        let b = EngineRuntime::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.workers() >= 2);
    }
}
