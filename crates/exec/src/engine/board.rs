//! The shared progress board: reducer heartbeats the migration coordinator
//! reads when deciding whether (and what) to migrate.
//!
//! Reducers publish lightweight progress signals as they work — whether they
//! are blocked on an empty queue, how many of their regions are sealed, how
//! many probe chunks they have swept, and per-region absorbed volumes. All
//! fields are relaxed atomics: the board is advisory input to a heuristic,
//! never part of the correctness protocol (queue FIFO order and the
//! in-flight accounting in `mod.rs` are what guarantee correctness), so a
//! momentarily stale read costs at most one deferred or spurious migration
//! decision.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared progress heartbeats: one slot per reducer task plus one per
/// region.
#[derive(Debug)]
pub struct ProgressBoard {
    /// Per reducer: currently blocked on (or about to block on) its queue.
    idle: Vec<AtomicBool>,
    /// Per reducer: regions whose build side has been sealed (merged).
    regions_sealed: Vec<AtomicU64>,
    /// Per reducer: probe chunks swept so far.
    chunks_swept: Vec<AtomicU64>,
    /// Per region: probe (`R2`) tuples absorbed so far — the coordinator's
    /// proxy for a region's share of the remaining probe stream.
    region_probe: Vec<AtomicU64>,
    /// Per region: build (`R1`) tuples absorbed so far — the coordinator's
    /// estimate of how much state a migration would ship.
    region_build: Vec<AtomicU64>,
    /// Per region: tuples currently spilled to disk. The coordinator
    /// charges these into a migration's move cost (the new owner must
    /// re-read them), so budget pressure does not make migration thrash
    /// spilled regions.
    region_spilled: Vec<AtomicU64>,
}

impl ProgressBoard {
    pub fn new(reducers: usize, n_regions: usize) -> Self {
        ProgressBoard {
            idle: (0..reducers).map(|_| AtomicBool::new(false)).collect(),
            regions_sealed: (0..reducers).map(|_| AtomicU64::new(0)).collect(),
            chunks_swept: (0..reducers).map(|_| AtomicU64::new(0)).collect(),
            region_probe: (0..n_regions).map(|_| AtomicU64::new(0)).collect(),
            region_build: (0..n_regions).map(|_| AtomicU64::new(0)).collect(),
            region_spilled: (0..n_regions).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn reducers(&self) -> usize {
        self.idle.len()
    }

    pub fn n_regions(&self) -> usize {
        self.region_probe.len()
    }

    #[inline]
    pub fn set_idle(&self, reducer: usize, idle: bool) {
        self.idle[reducer].store(idle, Ordering::Relaxed);
    }

    #[inline]
    pub fn is_idle(&self, reducer: usize) -> bool {
        self.idle[reducer].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn note_region_sealed(&self, reducer: usize) {
        self.regions_sealed[reducer].fetch_add(1, Ordering::Relaxed);
    }

    pub fn regions_sealed(&self, reducer: usize) -> u64 {
        self.regions_sealed[reducer].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn note_chunk_swept(&self, reducer: usize) {
        self.chunks_swept[reducer].fetch_add(1, Ordering::Relaxed);
    }

    pub fn chunks_swept(&self, reducer: usize) -> u64 {
        self.chunks_swept[reducer].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn add_probe(&self, region: u32, tuples: u64) {
        self.region_probe[region as usize].fetch_add(tuples, Ordering::Relaxed);
    }

    pub fn probe_tuples(&self, region: u32) -> u64 {
        self.region_probe[region as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn add_build(&self, region: u32, tuples: u64) {
        self.region_build[region as usize].fetch_add(tuples, Ordering::Relaxed);
    }

    pub fn build_tuples(&self, region: u32) -> u64 {
        self.region_build[region as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn add_spilled(&self, region: u32, tuples: u64) {
        self.region_spilled[region as usize].fetch_add(tuples, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub_spilled(&self, region: u32, tuples: u64) {
        self.region_spilled[region as usize].fetch_sub(tuples, Ordering::Relaxed);
    }

    pub fn spilled_tuples(&self, region: u32) -> u64 {
        self.region_spilled[region as usize].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_accumulate_per_slot() {
        let b = ProgressBoard::new(2, 3);
        assert_eq!(b.reducers(), 2);
        assert_eq!(b.n_regions(), 3);

        b.set_idle(1, true);
        assert!(!b.is_idle(0));
        assert!(b.is_idle(1));
        b.set_idle(1, false);
        assert!(!b.is_idle(1));

        b.note_region_sealed(0);
        b.note_region_sealed(0);
        b.note_chunk_swept(1);
        assert_eq!(b.regions_sealed(0), 2);
        assert_eq!(b.regions_sealed(1), 0);
        assert_eq!(b.chunks_swept(1), 1);

        b.add_probe(2, 10);
        b.add_probe(2, 5);
        b.add_build(0, 7);
        assert_eq!(b.probe_tuples(2), 15);
        assert_eq!(b.build_tuples(0), 7);
        assert_eq!(b.probe_tuples(0), 0);

        b.add_spilled(1, 20);
        b.sub_spilled(1, 8);
        assert_eq!(b.spilled_tuples(1), 12);
        assert_eq!(b.spilled_tuples(0), 0);
    }
}
