//! Morsel decomposition of the operator inputs, plus the shared memory
//! gauge that tracks the engine's peak resident footprint.
//!
//! A *morsel* is a fixed-size contiguous run of one input relation — the
//! scheduling quantum of the pipelined engine (after Leis et al.'s
//! morsel-driven parallelism). The [`MorselPlan`] describes the full
//! decomposition up front and hands out morsels through an atomic cursor, so
//! any number of mapper tasks can claim work without further coordination,
//! and an aborted run can report exactly which morsels were never consumed
//! (the adaptive CI fallback re-routes only those instead of re-morselizing).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use ewh_core::{ColumnBatch, Rel};

use super::exchange::Exchange;

/// The empty scan — what [`Source::scan_cols`] hands back for exchange
/// sources, so callers can always borrow columns without an `Option`.
static EMPTY_COLS: ColumnBatch = ColumnBatch::new();

/// One claimable unit of routing work: a contiguous tuple range of one
/// relation. `Copy` on purpose: mappers claim morsels in a hot loop and a
/// plain start/end pair costs nothing to hand around (a `Range` field would
/// force a clone per claim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Morsel {
    /// Position in the plan's global order (R1 morsels first).
    pub index: usize,
    pub rel: Rel,
    /// First tuple index of the run (inclusive).
    pub start: usize,
    /// One past the last tuple index (exclusive).
    pub end: usize,
}

impl Morsel {
    /// The tuple index range within the relation.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One input side of a pipelined operator: either a base relation resident
/// in memory (scanned through the [`MorselPlan`]'s arithmetic morsels) or
/// the streamed probe output of an upstream operator, arriving batch by
/// batch through a bounded [`Exchange`]. This is what makes operators
/// *composable*: a downstream join consumes the upstream's output without
/// the intermediate ever being fully resident.
#[derive(Clone, Copy, Debug)]
pub enum Source<'a> {
    /// A base relation (or any fully materialized input), in columnar
    /// layout so mappers route straight off the key column.
    Scan(&'a ColumnBatch),
    /// The streamed output of an upstream operator.
    Exchange(&'a Exchange),
}

impl<'a> Source<'a> {
    /// The scan columns, empty for exchange sources (their tuples are
    /// pulled from the queue, never addressed by morsel range).
    pub fn scan_cols(&self) -> &'a ColumnBatch {
        match self {
            Source::Scan(t) => t,
            Source::Exchange(_) => &EMPTY_COLS,
        }
    }

    pub fn exchange(&self) -> Option<&'a Exchange> {
        match self {
            Source::Scan(_) => None,
            Source::Exchange(e) => Some(e),
        }
    }
}

/// One [`MorselPlan::try_claim`] outcome.
#[derive(Clone, Copy, Debug)]
pub enum Claim {
    Claimed(Morsel),
    /// The next morsel is `R2` and the caller's gate disallows it (the
    /// build phase is still shipping). The engine's mappers park on
    /// `SealState::r1_wake` here; the seal's final countdown decrement
    /// wakes them with the gate open.
    Blocked,
    /// Every morsel has been claimed.
    Drained,
}

/// The morsel decomposition of a join's two inputs. Construction is O(1):
/// morsels are described arithmetically, never materialized.
#[derive(Debug)]
pub struct MorselPlan {
    morsel_tuples: usize,
    n1: usize,
    n2: usize,
    next: AtomicUsize,
}

impl MorselPlan {
    pub fn new(n1: usize, n2: usize, morsel_tuples: usize) -> Self {
        MorselPlan {
            morsel_tuples: morsel_tuples.max(1),
            n1,
            n2,
            next: AtomicUsize::new(0),
        }
    }

    pub fn morsel_tuples(&self) -> usize {
        self.morsel_tuples
    }

    pub fn r1_morsels(&self) -> usize {
        self.n1.div_ceil(self.morsel_tuples)
    }

    pub fn r2_morsels(&self) -> usize {
        self.n2.div_ceil(self.morsel_tuples)
    }

    pub fn total(&self) -> usize {
        self.r1_morsels() + self.r2_morsels()
    }

    /// The morsel at global position `index` (R1 morsels come first).
    pub fn describe(&self, index: usize) -> Morsel {
        let r1m = self.r1_morsels();
        debug_assert!(index < self.total());
        if index < r1m {
            let start = index * self.morsel_tuples;
            Morsel {
                index,
                rel: Rel::R1,
                start,
                end: (start + self.morsel_tuples).min(self.n1),
            }
        } else {
            let start = (index - r1m) * self.morsel_tuples;
            Morsel {
                index,
                rel: Rel::R2,
                start,
                end: (start + self.morsel_tuples).min(self.n2),
            }
        }
    }

    /// Claims the next unconsumed morsel; `None` once the plan is drained.
    pub fn claim(&self) -> Option<Morsel> {
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        (index < self.total()).then(|| self.describe(index))
    }

    /// [`claim`](Self::claim) with a build-phase gate: when `allow_r2` is
    /// false, a cursor standing at the first `R2` morsel stays put and the
    /// claim reports [`Claim::Blocked`]. The engine's mappers gate `R2`
    /// claims on the `R1` seal countdown — probe tuples routed before the
    /// seal can only sit in unbounded per-region `pending` buffers (no
    /// region can sweep yet), so racing ahead into `R2` while some mapper
    /// is still shipping `R1` buys no pipelining and can balloon the
    /// resident peak to the whole probe side.
    pub fn try_claim(&self, allow_r2: bool) -> Claim {
        loop {
            let cur = self.next.load(Ordering::Acquire);
            if cur >= self.total() {
                return Claim::Drained;
            }
            if !allow_r2 && cur >= self.r1_morsels() {
                return Claim::Blocked;
            }
            if self
                .next
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Claim::Claimed(self.describe(cur));
            }
        }
    }

    /// Morsels handed out so far (== routed morsels once a run completes; on
    /// a cancelled run, `total() - consumed()` morsels were never routed).
    pub fn consumed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.total())
    }

    /// `R1` morsels not yet claimed — what a (resumed) engine run will
    /// route before its `SealR1` fires.
    pub fn r1_unconsumed(&self) -> usize {
        self.r1_morsels().saturating_sub(self.consumed())
    }

    /// Morsels of both relations not yet claimed.
    pub fn unconsumed(&self) -> usize {
        self.total() - self.consumed()
    }

    /// Rewinds the cursor for callers that want to re-route the whole plan
    /// from scratch instead of resuming the unconsumed remainder.
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// Cluster-wide resident-tuple gauge: incremented when a routed batch is
/// materialized, decremented when the reducer frees it (probe chunks after
/// their sweep, build state when the region completes). The high-water mark
/// is the engine's peak resident footprint — the number the pipelined mode
/// exists to shrink versus the batch path's full shuffle materialization.
#[derive(Debug, Default)]
pub struct MemGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemGauge {
    pub fn add(&self, tuples: u64) {
        let now = self.current.fetch_add(tuples, Ordering::Relaxed) + tuples;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    pub fn sub(&self, tuples: u64) {
        self.current.fetch_sub(tuples, Ordering::Relaxed);
    }

    pub fn peak_tuples(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    pub fn current_tuples(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_both_relations_exactly() {
        let plan = MorselPlan::new(10_000, 4_097, 1024);
        assert_eq!(plan.r1_morsels(), 10);
        assert_eq!(plan.r2_morsels(), 5);
        let mut covered1 = 0;
        let mut covered2 = 0;
        for i in 0..plan.total() {
            let m = plan.describe(i);
            assert_eq!(m.index, i);
            assert!(m.len() <= 1024 && !m.is_empty());
            assert_eq!(m.range(), m.start..m.end);
            match m.rel {
                Rel::R1 => {
                    assert_eq!(m.start, covered1);
                    covered1 = m.end;
                }
                Rel::R2 => {
                    assert_eq!(m.start, covered2);
                    covered2 = m.end;
                }
            }
        }
        assert_eq!(covered1, 10_000);
        assert_eq!(covered2, 4_097);
    }

    #[test]
    fn claim_drains_each_morsel_exactly_once() {
        let plan = MorselPlan::new(100, 50, 16);
        let mut seen = vec![false; plan.total()];
        while let Some(m) = plan.claim() {
            assert!(!seen[m.index], "morsel {} claimed twice", m.index);
            seen[m.index] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(plan.consumed(), plan.total());
        plan.reset();
        assert_eq!(plan.consumed(), 0);
        assert!(plan.claim().is_some());
    }

    #[test]
    fn empty_relations_yield_no_morsels() {
        let plan = MorselPlan::new(0, 0, 1024);
        assert_eq!(plan.total(), 0);
        assert!(plan.claim().is_none());
    }

    #[test]
    fn gauge_tracks_the_high_water_mark() {
        let g = MemGauge::default();
        g.add(100);
        g.add(50);
        g.sub(120);
        g.add(10);
        assert_eq!(g.peak_tuples(), 150);
        assert_eq!(g.current_tuples(), 40);
    }
}
