//! The `FragmentPort` trait: the push/pop/park/close/abandon surface every
//! fragment channel in the engine speaks, extracted so mapper, reducer, and
//! coordinator code stops naming concrete queue types.
//!
//! Three families implement it:
//!
//! * [`BoundedQueue`] — the in-process mapper→reducer delivery queue
//!   (`Item = Delivery`). `close`/`abandon` are no-ops: its lifecycle is
//!   driven by in-band control messages (`SealAll`/`Finish`/`Abort`), so it
//!   never reports [`PortPop::Closed`].
//! * [`Exchange`] — the inter-operator batch queue (`Item = ColumnBatch`),
//!   with out-of-band close/abandon.
//! * The remote variants in [`super::transport`] — the same contracts
//!   carried over a framed byte stream, with credit-based flow control
//!   standing in for the shared-memory bound.
//!
//! The contract mirrors what the concrete types already promise: a failed
//! `try_*_or_park` registered the waker *under the same lock* as the failed
//! attempt, so the freeing transition can never race past unobserved; a
//! bounced push hands the item back untouched; `push_unbounded` bypasses
//! the bound for traffic that must never deadlock behind it.

use ewh_core::ColumnBatch;

use super::exchange::{Exchange, TryPop};
use super::queue::{BoundedQueue, Delivery};
use super::runtime::Waker;

/// One observation from a non-blocking port pop.
#[derive(Debug)]
pub enum PortPop<T> {
    /// The next item.
    Item(T),
    /// Momentarily empty but still open; a parked caller will be woken.
    Empty,
    /// Closed and drained — the end of the stream. Ports whose lifecycle is
    /// in-band ([`BoundedQueue`]) never report this.
    Closed,
}

/// A bounded MPMC fragment channel: the engine's abstraction over local
/// queues, inter-operator exchanges, and framed network links.
pub trait FragmentPort: Send + Sync {
    /// What travels through the port (delivery messages or raw batches).
    type Item;

    /// Blocking bounded push, for client threads outside the pool.
    fn push(&self, item: Self::Item);

    /// Non-blocking bounded push; hands the item back when at capacity.
    fn try_push(&self, item: Self::Item) -> Result<(), Self::Item>;

    /// [`try_push`](Self::try_push) that registers `waker` (under the same
    /// lock as the failed attempt) to be woken by the next freeing
    /// transition. `Err` means "parked: return `Pending`".
    fn try_push_or_park(&self, item: Self::Item, waker: &Waker) -> Result<(), Self::Item>;

    /// Non-blocking push that bypasses the capacity bound (weight still
    /// accounted) — for control traffic and reducer→reducer forwarding
    /// where blocking could form a waiting cycle.
    fn push_unbounded(&self, item: Self::Item);

    /// Non-blocking pop.
    fn try_pop(&self) -> PortPop<Self::Item>;

    /// [`try_pop`](Self::try_pop) that registers `waker` to be woken by the
    /// next push (or close/abandon). `Empty` means "parked: return
    /// `Pending`".
    fn try_pop_or_park(&self, waker: &Waker) -> PortPop<Self::Item>;

    /// Producer-side end of stream. No-op for ports with in-band lifecycle.
    fn close(&self);

    /// Consumer-side teardown: producers must never block again; their
    /// pushes are silently discarded. No-op for ports with in-band
    /// lifecycle.
    fn abandon(&self);

    /// Tuples currently occupying the port — the queue-depth heartbeat the
    /// migration coordinator reads when hunting for stragglers. For a
    /// remote port this includes tuples in flight on the wire (sent but
    /// not yet credited back), so backpressure accounting stays
    /// end-to-end.
    fn used_tuples(&self) -> usize;

    /// Charges producer-side blocked time observed outside the port.
    fn note_blocked(&self, nanos: u64);

    /// Total time producers spent blocked on this port.
    fn blocked_secs(&self) -> f64;
}

/// The engine's delivery channel as a trait object — what `MapperShared`,
/// `ReducerShared`, and `CoordinatorShared` hold instead of a concrete
/// queue slice.
pub type DeliveryPort = dyn FragmentPort<Item = Delivery>;

/// The inter-operator batch channel as a trait object.
pub type BatchPort = dyn FragmentPort<Item = ColumnBatch>;

impl FragmentPort for BoundedQueue {
    type Item = Delivery;

    fn push(&self, item: Delivery) {
        BoundedQueue::push(self, item);
    }

    fn try_push(&self, item: Delivery) -> Result<(), Delivery> {
        BoundedQueue::try_push(self, item)
    }

    fn try_push_or_park(&self, item: Delivery, waker: &Waker) -> Result<(), Delivery> {
        BoundedQueue::try_push_or_park(self, item, waker)
    }

    fn push_unbounded(&self, item: Delivery) {
        BoundedQueue::push_unbounded(self, item);
    }

    fn try_pop(&self) -> PortPop<Delivery> {
        match BoundedQueue::try_pop(self) {
            Some(item) => PortPop::Item(item),
            None => PortPop::Empty,
        }
    }

    fn try_pop_or_park(&self, waker: &Waker) -> PortPop<Delivery> {
        match BoundedQueue::try_pop_or_park(self, waker) {
            Some(item) => PortPop::Item(item),
            None => PortPop::Empty,
        }
    }

    /// No-op: a delivery queue's end of stream is the in-band
    /// [`Delivery::Finish`] / [`Delivery::Abort`] message.
    fn close(&self) {}

    /// No-op: reducers drain to a control message even when aborting, so
    /// producers never need an out-of-band release.
    fn abandon(&self) {}

    fn used_tuples(&self) -> usize {
        BoundedQueue::used_tuples(self)
    }

    fn note_blocked(&self, nanos: u64) {
        BoundedQueue::note_blocked(self, nanos);
    }

    fn blocked_secs(&self) -> f64 {
        BoundedQueue::blocked_secs(self)
    }
}

impl FragmentPort for Exchange {
    type Item = ColumnBatch;

    fn push(&self, item: ColumnBatch) {
        Exchange::push(self, item);
    }

    fn try_push(&self, item: ColumnBatch) -> Result<(), ColumnBatch> {
        Exchange::try_push(self, item)
    }

    fn try_push_or_park(&self, item: ColumnBatch, waker: &Waker) -> Result<(), ColumnBatch> {
        Exchange::try_push_or_park(self, item, waker)
    }

    /// The exchange has no unbounded lane (its only producers are reducer
    /// outboxes, which spill rather than overrun); a blocking push is the
    /// closest contract match for must-deliver traffic.
    fn push_unbounded(&self, item: ColumnBatch) {
        Exchange::push(self, item);
    }

    fn try_pop(&self) -> PortPop<ColumnBatch> {
        match Exchange::try_pop(self) {
            TryPop::Batch(b) => PortPop::Item(b),
            TryPop::Empty => PortPop::Empty,
            TryPop::Closed => PortPop::Closed,
        }
    }

    fn try_pop_or_park(&self, waker: &Waker) -> PortPop<ColumnBatch> {
        match Exchange::try_pop_or_park(self, waker) {
            TryPop::Batch(b) => PortPop::Item(b),
            TryPop::Empty => PortPop::Empty,
            TryPop::Closed => PortPop::Closed,
        }
    }

    fn close(&self) {
        Exchange::close(self);
    }

    fn abandon(&self) {
        Exchange::abandon(self);
    }

    fn used_tuples(&self) -> usize {
        Exchange::used_tuples(self)
    }

    /// The exchange does not account producer stalls (its backpressure is
    /// reported by the upstream engine's own queues).
    fn note_blocked(&self, _nanos: u64) {}

    fn blocked_secs(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ewh_core::Rel;

    fn cols(n: usize) -> ColumnBatch {
        let mut b = ColumnBatch::with_capacity(n);
        for i in 0..n {
            b.push(i as i64, i as u64);
        }
        b
    }

    fn delivery(n: usize) -> Delivery {
        Delivery::Batch(super::super::queue::RegionBatch {
            region: 0,
            rel: Rel::R2,
            epoch: 0,
            tuples: cols(n),
        })
    }

    #[test]
    fn the_port_surface_matches_the_queue_semantics() {
        let q = BoundedQueue::new(4);
        let port: &DeliveryPort = &q;
        assert!(port.try_push(delivery(3)).is_ok());
        assert!(port.try_push(delivery(3)).is_err(), "bounced at capacity");
        port.push_unbounded(delivery(9));
        assert_eq!(port.used_tuples(), 12);
        assert!(matches!(port.try_pop(), PortPop::Item(_)));
        assert!(matches!(port.try_pop(), PortPop::Item(_)));
        // A queue is never Closed — lifecycle is in-band.
        port.close();
        port.abandon();
        assert!(matches!(port.try_pop(), PortPop::Empty));
    }

    #[test]
    fn the_port_surface_matches_the_exchange_semantics() {
        let ex = Exchange::new(4);
        let port: &BatchPort = &ex;
        assert!(port.try_push(cols(3)).is_ok());
        assert!(port.try_push(cols(2)).is_err(), "bounced at capacity");
        assert!(matches!(port.try_pop(), PortPop::Item(_)));
        assert!(matches!(port.try_pop(), PortPop::Empty));
        port.close();
        assert!(matches!(port.try_pop(), PortPop::Closed));
    }
}
