//! Property-based correctness of the framed transport: the wire codec must
//! be bit-exact over adversarial `ColumnBatch`es (empty batches, extreme
//! `i64` keys, slabs past the decoder's 64 KiB compaction threshold) no
//! matter how the byte stream is chopped into reads, and the whole
//! pipelined engine must produce output identical to the `ExecMode::Batch`
//! oracle when every mapper → reducer delivery crosses a framed link —
//! loopback pipes or real localhost TCP sockets, with and without
//! migration thresholds forced to fire (`MIGRATE`/`ADOPT` control frames
//! ride the same wire as data), and with a spill budget forcing adopted
//! regions to ship their on-disk run descriptors through the codec.
//!
//! Deterministic companions cover the failure surface: a truncated stream
//! leaves the decoder reporting buffered mid-frame bytes, a corrupted
//! length field surfaces as a `FrameError` (never a panic or a wild
//! allocation), and a corrupt frame injected into a live engine run cancels
//! the query *cooperatively* — the pool survives and completes the next
//! transport query.

use std::panic::AssertUnwindSafe;

use ewh_core::{
    encode_frame, ColumnBatch, FrameDecoder, FrameError, JoinCondition, Key, SchemeKind, Tuple,
};
use ewh_exec::{
    run_operator, AdaptiveConfig, EngineRuntime, ExecMode, OperatorConfig, SpillConfig, Straggler,
    TransportConfig,
};
use proptest::prelude::*;

fn batch_strategy(max_len: usize) -> impl Strategy<Value = ColumnBatch> {
    prop::collection::vec(
        (
            prop_oneof![
                Just(Key::MIN),
                Just(Key::MAX),
                Just(0i64),
                Just(-1i64),
                any::<i64>(),
            ],
            any::<u64>(),
        ),
        0..max_len,
    )
    .prop_map(|pairs| {
        let mut b = ColumnBatch::with_capacity(pairs.len());
        for (k, p) in pairs {
            b.push(k, p);
        }
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    // Bit-identity through the codec under adversarial stream splits: the
    // frame must decode to exactly what was encoded regardless of how the
    // transport's reads chop the bytes.
    #[test]
    fn frames_survive_arbitrary_chunked_reads(
        batch in batch_strategy(300),
        kind in 1u8..11,
        a in any::<u64>(),
        b in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 0..48),
        chunk in 1usize..97,
    ) {
        let mut wire = Vec::new();
        encode_frame(&mut wire, kind, a, b, &extra, &batch);
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.feed(piece);
            while let Some(f) = dec.next_frame().expect("clean wire bytes never error") {
                frames.push(f);
            }
        }
        prop_assert_eq!(frames.len(), 1, "exactly one frame on the wire");
        let f = &frames[0];
        prop_assert_eq!(f.kind, kind);
        prop_assert_eq!(f.a, a);
        prop_assert_eq!(f.b, b);
        prop_assert_eq!(&f.extra, &extra);
        prop_assert_eq!(f.batch.keys(), batch.keys());
        prop_assert_eq!(f.batch.payloads(), batch.payloads());
        prop_assert_eq!(dec.pending_bytes(), 0, "no bytes may linger after a full frame");
    }
}

/// Slabs far past the decoder's 64 KiB compaction threshold round-trip
/// bit-exactly — whole, in fixed 64 KiB reads (forcing mid-slab
/// compactions), and as a back-to-back pair on one stream.
#[test]
fn oversized_slabs_round_trip_bit_exactly() {
    let mut big = ColumnBatch::with_capacity(20_000);
    for i in 0..20_000i64 {
        let key = match i % 4 {
            0 => Key::MIN + i,
            1 => Key::MAX - i,
            _ => i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64),
        };
        big.push(key, (i as u64).rotate_left(17));
    }
    let mut wire = Vec::new();
    encode_frame(&mut wire, 1, 7, 9, b"meta", &big);
    encode_frame(&mut wire, 3, 0, 0, &[], &ColumnBatch::new());
    assert!(wire.len() > 2 * 64 * 1024, "the frame must dwarf one read");

    for chunk in [wire.len(), 64 * 1024, 4096] {
        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.feed(piece);
            while let Some(f) = dec.next_frame().expect("clean stream") {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2, "chunk={chunk}");
        assert_eq!(frames[0].batch.keys(), big.keys());
        assert_eq!(frames[0].batch.payloads(), big.payloads());
        assert_eq!(&frames[0].extra, b"meta");
        assert!(frames[1].batch.is_empty());
        assert_eq!(dec.pending_bytes(), 0);
    }
}

/// A stream ending mid-frame is not an error at the codec layer — the
/// decoder just keeps the partial bytes buffered, which is what lets the
/// transport's reader distinguish "truncated mid-frame" from a clean EOF.
#[test]
fn a_truncated_stream_leaves_pending_bytes() {
    let mut batch = ColumnBatch::new();
    batch.push(42, 7);
    let mut wire = Vec::new();
    encode_frame(&mut wire, 1, 0, 0, &[], &batch);
    let mut dec = FrameDecoder::new();
    dec.feed(&wire[..wire.len() - 1]);
    assert!(matches!(dec.next_frame(), Ok(None)));
    assert!(dec.pending_bytes() > 0, "partial frame must stay visible");
    // The final byte completes it.
    dec.feed(&wire[wire.len() - 1..]);
    let f = dec.next_frame().unwrap().expect("now complete");
    assert_eq!(f.batch.keys(), batch.keys());
    assert_eq!(dec.pending_bytes(), 0);
}

/// Corrupted length fields surface as typed errors, never as panics or
/// unbounded allocations: an inner length overrunning the body is
/// `Corrupt`, a body length past the frame cap is `Oversized`.
#[test]
fn corrupt_length_fields_are_typed_errors() {
    let mut batch = ColumnBatch::new();
    batch.push(1, 2);
    let mut wire = Vec::new();
    encode_frame(&mut wire, 1, 3, 4, b"x", &batch);

    // Inflate the extra_len field (body offset 17, wire offset 21) so the
    // sidecar claims to extend past the frame body.
    let mut bad = wire.clone();
    bad[21] ^= 0xFF;
    let mut dec = FrameDecoder::new();
    dec.feed(&bad);
    assert!(
        matches!(dec.next_frame(), Err(FrameError::Corrupt(_))),
        "inflated inner length must decode as Corrupt"
    );

    // A body length past MAX_FRAME_BODY must be rejected before any
    // buffering could try to honor it.
    let mut huge = wire;
    huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut dec = FrameDecoder::new();
    dec.feed(&huge);
    assert!(
        matches!(dec.next_frame(), Err(FrameError::Oversized(_))),
        "a body claiming 4 GiB must decode as Oversized"
    );
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

/// The `prop_migration.rs` forcing thresholds: any observed imbalance
/// migrates, so `MIGRATE`/`ADOPT` control frames actually cross the wire.
fn forced_migration() -> AdaptiveConfig {
    AdaptiveConfig {
        reassign: true,
        move_cost_factor: 0.0,
        migrate_backlog_tuples: 1,
        poll_micros: 20,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // The whole engine over framed links — loopback pipes and real TCP
    // sockets — stays bit-identical to the batch oracle on every scheme,
    // with and without forced migration (sealed regions then travel as
    // ADOPT frames on the same stream as the data they interleave with).
    #[test]
    fn transport_engine_equals_batch_oracle(
        k1 in prop::collection::vec(0i64..60, 0..200),
        k2 in prop::collection::vec(0i64..60, 0..200),
        beta in 0i64..3,
        j in 1usize..6,
        seed in 0u64..1000,
        migrate in any::<bool>(),
        tcp in any::<bool>(),
    ) {
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let cond = JoinCondition::Band { beta };
        let transport = if tcp { TransportConfig::tcp() } else { TransportConfig::loopback() };
        let rt = EngineRuntime::new(4);
        let base = OperatorConfig {
            j,
            threads: 4,
            seed,
            morsel_tuples: 48,
            queue_tuples: 64,
            ..Default::default()
        };
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio, SchemeKind::Hash] {
            let batch = run_operator(
                &rt, kind, &r1, &r2, &cond,
                &OperatorConfig { mode: ExecMode::Batch, ..base.clone() },
            );
            let framed = run_operator(
                &rt, kind, &r1, &r2, &cond,
                &OperatorConfig {
                    mode: ExecMode::Pipelined,
                    transport: Some(transport),
                    adaptive: if migrate { forced_migration() } else { AdaptiveConfig::default() },
                    ..base.clone()
                },
            );
            prop_assert_eq!(
                framed.join.output_total, batch.join.output_total,
                "{} beta={} tcp={} migrate={}", kind, beta, tcp, migrate
            );
            prop_assert_eq!(
                framed.join.checksum, batch.join.checksum,
                "{} beta={} tcp={} checksum", kind, beta, tcp
            );
        }
    }
}

/// Out-of-core execution over the wire: with a ~10% budget forcing spills
/// *and* forced migration, adopted regions ship their on-disk run
/// descriptors through `ADOPT` frames (the runs travel by path — both ends
/// share the per-query spill directory) and the join stays exact.
#[test]
fn spilling_transport_run_with_forced_migration_matches_oracle() {
    let keys: Vec<Key> = (0..3000).map(|i| (i % 150) as Key).collect();
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cond = JoinCondition::Equi;
    let rt = EngineRuntime::new(4);
    let base = OperatorConfig {
        j: 8,
        threads: 4,
        morsel_tuples: 128,
        queue_tuples: 256,
        ..Default::default()
    };
    let batch = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base.clone()
        },
    );
    let framed = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            transport: Some(TransportConfig::loopback()),
            adaptive: forced_migration(),
            // A straggling reducer keeps one link visibly backlogged while
            // its sibling drains — without it the forced thresholds race
            // the credit round-trip (a remote link's `used_tuples` only
            // reaches zero once credits return) and can miss the window.
            straggler: Some(Straggler {
                reducer: 0,
                nanos_per_tuple: 20_000,
            }),
            spill: SpillConfig {
                budget_tuples: Some((r1.len() + r2.len()) as u64 / 10),
                temp_dir: None,
                fail_after_bytes: None,
            },
            ..base
        },
    );
    assert_eq!(framed.join.output_total, batch.join.output_total);
    assert_eq!(framed.join.checksum, batch.join.checksum);
    assert!(
        framed.join.spill_bytes > 0,
        "the 10% budget must force real spill I/O"
    );
    assert!(
        framed.join.regions_migrated > 0,
        "forced thresholds must fire at least one migration over the wire"
    );
}

/// A corrupted frame on a live link cancels the query *cooperatively*: the
/// failure latch trips, every parked task is woken and unwinds through the
/// normal abort protocol (no pool worker deadlocks, no process panic from
/// an I/O thread), the driver re-raises the failure at the query join —
/// and the pool then completes a healthy transport query.
#[test]
fn a_corrupt_frame_cancels_the_query_and_the_pool_survives() {
    let keys: Vec<Key> = (0..3000).map(|i| (i % 150) as Key).collect();
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cond = JoinCondition::Equi;
    let rt = EngineRuntime::new(4);
    let base = OperatorConfig {
        j: 8,
        threads: 4,
        morsel_tuples: 128,
        queue_tuples: 256,
        ..Default::default()
    };
    let poisoned = OperatorConfig {
        mode: ExecMode::Pipelined,
        transport: Some(TransportConfig {
            corrupt_frame: Some(0),
            ..TransportConfig::loopback()
        }),
        ..base.clone()
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_operator(&rt, SchemeKind::Csio, &r1, &r2, &cond, &poisoned)
    }));
    let err = result.expect_err("a corrupt frame must surface as a panic at the query join");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("transport"),
        "panic should carry the transport failure, got: {msg}"
    );

    // The pool was not poisoned: the same runtime completes a healthy
    // TCP-transport query afterwards, matching the oracle.
    let batch = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base.clone()
        },
    );
    let healthy = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            transport: Some(TransportConfig::tcp()),
            ..base
        },
    );
    assert_eq!(healthy.join.output_total, batch.join.output_total);
    assert_eq!(healthy.join.checksum, batch.join.checksum);
    assert!(
        healthy.join.wire_bytes > 0,
        "a TCP run must report wire traffic"
    );
}
