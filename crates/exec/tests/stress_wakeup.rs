//! Lost-wakeup stress: the adversarial schedule for the event-driven
//! scheduler's park/unpark protocol.
//!
//! Tiny bounded queues force a block on nearly every push and pop, many
//! more engine tasks than pool workers force every block to really park
//! (there is always other runnable work, so nothing is saved by the
//! NOTIFIED fast path), and forced migration fires Migrate/Adopt fences
//! mid-stream. A registration that races a transition — the classic lost
//! wakeup — deadlocks the run (every worker parked, the missed waiter
//! never re-enqueued); a double wake or a stale wake corrupts scheduling
//! order, which the bit-identical [`ExecMode::Batch`] oracle comparison
//! catches. Repeated seeds explore fresh interleavings on every run.
//!
//! CI runs this file under a named step with a hard timeout, so a hang
//! fails loudly instead of stalling the suite; the in-process watchdog
//! below aborts earlier with a diagnostic when something parks forever.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use ewh_core::{JoinCondition, Key, SchemeKind, Tuple};
use ewh_exec::{
    run_operator, AdaptiveConfig, EngineRuntime, ExecMode, OperatorConfig, RuntimeConfig,
};

/// Generous ceiling for the whole test (the real runs take a few seconds):
/// only a deadlocked pool can reach it.
const WATCHDOG: Duration = Duration::from_secs(120);

fn hotkey_tuples(n: usize, domain: Key, seed: u64) -> Vec<Tuple> {
    // Hot-key heavy: ~1/3 of tuples on key 0 keeps one region backlogged,
    // so migration triggers and queues actually fill.
    (0..n)
        .map(|i| {
            let mix = (i as u64).wrapping_mul(seed | 1).wrapping_add(0x9E37_79B9) % 100;
            let k = if mix < 33 {
                0
            } else {
                (mix as Key * 7 + i as Key) % domain
            };
            Tuple::new(k, i as u64)
        })
        .collect()
}

fn stress_config(seed: u64) -> OperatorConfig {
    OperatorConfig {
        j: 4,
        // Many tasks per query: far more than the pool's workers, so
        // every block must park (siblings keep the workers saturated).
        threads: 8,
        seed,
        // Tiny buffers: nearly every push blocks, nearly every pop races a
        // push, the seal gate stays contended.
        morsel_tuples: 16,
        queue_tuples: 8,
        exchange_tuples: 64,
        adaptive: AdaptiveConfig {
            reassign: true,
            move_cost_factor: 0.0,
            migrate_backlog_tuples: 1,
            poll_micros: 20,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn tiny_queues_many_tasks_and_migration_never_lose_a_wakeup() {
    let done = std::sync::Arc::new(AtomicBool::new(false));
    let watchdog = {
        let done = done.clone();
        thread::spawn(move || {
            let step = Duration::from_millis(200);
            let mut waited = Duration::ZERO;
            while waited < WATCHDOG {
                if done.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(step);
                waited += step;
            }
            eprintln!(
                "stress_wakeup: no progress after {WATCHDOG:?} — a parked task \
                 was never woken (lost wakeup); aborting for CI diagnostics"
            );
            std::process::abort();
        })
    };

    for seed in 0..12u64 {
        let cfg = stress_config(seed);
        let r1 = hotkey_tuples(1500, 40, seed ^ 0x51);
        let r2 = hotkey_tuples(1500, 40, seed ^ 0x52);
        let cond = JoinCondition::Equi;

        // The batch oracle: two global barriers, no queues, no parking.
        let oracle_rt = EngineRuntime::new(2);
        let batch_cfg = OperatorConfig {
            mode: ExecMode::Batch,
            ..cfg.clone()
        };
        let oracle = run_operator(&oracle_rt, SchemeKind::Csio, &r1, &r2, &cond, &batch_cfg);
        assert!(oracle.join.output_total > 0);

        // Starve the pipelined runs: 2 workers multiplex 3 queries x 8
        // tasks, so parked tasks outnumber workers ~10x and every wake
        // must thread the registration/generation handshake correctly.
        let rt = EngineRuntime::with_config(RuntimeConfig {
            workers: 2,
            max_concurrent_queries: 3,
            memory_budget_tuples: None,
            pending_nap_micros: None,
        });
        let pipelined_cfg = OperatorConfig {
            mode: ExecMode::Pipelined,
            ..cfg
        };
        let results: Vec<(u64, u64)> = thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let (rt, r1, r2, cond, cfg) = (&rt, &r1, &r2, &cond, &pipelined_cfg);
                    s.spawn(move || {
                        let run = run_operator(rt, SchemeKind::Csio, r1, r2, cond, cfg);
                        (run.join.output_total, run.join.checksum)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stressed query panicked"))
                .collect()
        });
        for (q, &(output, checksum)) in results.iter().enumerate() {
            assert_eq!(
                output, oracle.join.output_total,
                "seed {seed} query {q}: output drifted under park/unpark stress"
            );
            assert_eq!(
                checksum, oracle.join.checksum,
                "seed {seed} query {q}: checksum drifted under park/unpark stress"
            );
        }

        // The stress must actually exercise the waker path: with tasks
        // outnumbering workers this heavily, blocks (and therefore parks
        // and wakes) are structurally unavoidable.
        let m = rt.metrics();
        assert!(
            m.wakeups > 0,
            "seed {seed}: no task ever parked — the stress lost its teeth"
        );
    }

    done.store(true, Ordering::Release);
    watchdog.join().expect("watchdog panicked");
}
