//! Property-based correctness of out-of-core execution: with the spill
//! budget forced to ~10% of the input — so reducers *must* shed sealed
//! build runs, pre-seal probe pendings, and (in chained plans) outbox
//! batches to disk — the pipelined engine's `output_total` and XOR
//! `checksum` must stay bit-identical to the `ExecMode::Batch` oracle for
//! all four scheme kinds, with and without migration thresholds forced to
//! fire. This certifies the whole spill ladder, the merge-replay of
//! spilled runs during the sweep, and the shipping of spilled-run
//! descriptors across a region migration.
//!
//! Deterministic companions pin the claims the properties could silently
//! stop exercising: a pressured run actually reports `spill_bytes > 0`,
//! spill files never outlive their query (success path), and an injected
//! spill-write fault cancels the query cleanly — the panic surfaces at the
//! driver, no pool worker deadlocks, and the temp dir is still reclaimed.

use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

use ewh_core::{JoinCondition, Key, SchemeKind, Tuple};
use ewh_exec::{
    run_operator, AdaptiveConfig, EngineRuntime, ExecMode, OperatorConfig, SpillConfig,
};
use proptest::prelude::*;

fn condition_strategy() -> impl Strategy<Value = JoinCondition> {
    // Equi and Band only: the Hash scheme supports nothing else.
    prop_oneof![
        Just(JoinCondition::Equi),
        (0i64..4).prop_map(|beta| JoinCondition::Band { beta }),
    ]
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0i64..60, 0..max_len)
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

/// Thresholds at which any observed imbalance migrates (the
/// `prop_migration.rs` forcing config) — spilled regions must survive the
/// Migrate/Adopt handshake with their on-disk runs intact.
fn forced_migration() -> AdaptiveConfig {
    AdaptiveConfig {
        reassign: true,
        move_cost_factor: 0.0,
        migrate_backlog_tuples: 1,
        poll_micros: 20,
        ..Default::default()
    }
}

/// A per-test spill base directory, so hygiene assertions can't race other
/// test binaries using the system temp dir.
fn spill_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ewh-prop-spill-{}-{tag}", std::process::id()))
}

/// Asserts no per-query spill directory (and so no run file) survived its
/// query: `QueryTicket::drop` must have reclaimed each one.
fn assert_no_leftover_spill(base: &Path) {
    if let Ok(entries) = std::fs::read_dir(base) {
        let leftover: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        assert!(
            leftover.is_empty(),
            "spill files leaked past their queries: {leftover:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn spilling_engine_equals_batch_oracle(
        k1 in keys_strategy(220),
        k2 in keys_strategy(220),
        cond in condition_strategy(),
        j in 1usize..7,
        seed in 0u64..1000,
        migrate in any::<bool>(),
    ) {
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        // ~10% of the input: virtually everything a reducer absorbs must
        // round-trip through disk (floor of 8 keeps degenerate tiny inputs
        // from spilling one tuple at a time forever).
        let budget = ((r1.len() + r2.len()) as u64 / 10).max(8);
        let base_dir = spill_base("oracle");
        let rt = EngineRuntime::new(4);
        let base = OperatorConfig {
            j,
            threads: 4,
            seed,
            morsel_tuples: 48,
            queue_tuples: 64,
            ..Default::default()
        };
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio, SchemeKind::Hash] {
            let batch = run_operator(
                &rt,
                kind,
                &r1,
                &r2,
                &cond,
                &OperatorConfig { mode: ExecMode::Batch, ..base.clone() },
            );
            let spilling = run_operator(
                &rt,
                kind,
                &r1,
                &r2,
                &cond,
                &OperatorConfig {
                    mode: ExecMode::Pipelined,
                    spill: SpillConfig {
                        budget_tuples: Some(budget),
                        temp_dir: Some(base_dir.clone()),
                        fail_after_bytes: None,
                    },
                    adaptive: if migrate {
                        forced_migration()
                    } else {
                        AdaptiveConfig::default()
                    },
                    ..base.clone()
                },
            );
            prop_assert_eq!(
                spilling.join.output_total,
                batch.join.output_total,
                "{} {:?} budget={} migrate={}",
                kind,
                cond,
                budget,
                migrate
            );
            prop_assert_eq!(
                spilling.join.checksum,
                batch.join.checksum,
                "{} {:?} checksum budget={}",
                kind,
                cond,
                budget
            );
        }
        assert_no_leftover_spill(&base_dir);
        let _ = std::fs::remove_dir_all(&base_dir);
    }
}

/// Deterministic companion: a pressured run *must* actually spill (so the
/// property above cannot silently pass in-memory), stay exact, and leave
/// the spill base directory empty when the query completes.
#[test]
fn forced_budget_spills_matches_oracle_and_cleans_up() {
    let keys: Vec<Key> = (0..4000).map(|i| (i % 200) as Key).collect();
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cond = JoinCondition::Equi;
    let base_dir = spill_base("deterministic");
    let base = OperatorConfig {
        j: 8,
        threads: 4,
        morsel_tuples: 128,
        queue_tuples: 256,
        ..Default::default()
    };
    let rt = EngineRuntime::new(4);
    let batch = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base.clone()
        },
    );
    let spilling = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            spill: SpillConfig {
                // 5% of the input: the build side alone is 10x over budget.
                budget_tuples: Some((r1.len() + r2.len()) as u64 / 20),
                temp_dir: Some(base_dir.clone()),
                fail_after_bytes: None,
            },
            ..base.clone()
        },
    );
    assert_eq!(spilling.join.output_total, batch.join.output_total);
    assert_eq!(spilling.join.checksum, batch.join.checksum);
    assert!(
        spilling.join.spill_bytes > 0,
        "a 5% budget must force actual spill I/O"
    );
    assert!(spilling.join.spill_secs > 0.0);
    assert_no_leftover_spill(&base_dir);

    // Zero pressure on the same workload: no budget, no spill I/O at all.
    let unbudgeted = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            ..base
        },
    );
    assert_eq!(unbudgeted.join.output_total, batch.join.output_total);
    assert_eq!(unbudgeted.join.spill_bytes, 0);
    assert_eq!(unbudgeted.join.spill_secs, 0.0);
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// An I/O failure mid-spill cancels the query *cleanly*: the injected
/// write fault (`fail_after_bytes: Some(0)` fails the very first run) is
/// recorded, mappers and reducers wind down cooperatively — no pool worker
/// deadlocks — and the driver re-raises the failure as a panic at the
/// query join. The pool must stay healthy for the next query, and the
/// ticket's `Drop` must reclaim the spill dir on this path too.
#[test]
fn spill_write_fault_cancels_query_and_pool_survives() {
    let keys: Vec<Key> = (0..4000).map(|i| (i % 200) as Key).collect();
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cond = JoinCondition::Equi;
    let base_dir = spill_base("fault");
    let rt = EngineRuntime::new(4);
    let base = OperatorConfig {
        j: 8,
        threads: 4,
        morsel_tuples: 128,
        queue_tuples: 256,
        ..Default::default()
    };
    let faulty = OperatorConfig {
        mode: ExecMode::Pipelined,
        spill: SpillConfig {
            budget_tuples: Some(64),
            temp_dir: Some(base_dir.clone()),
            fail_after_bytes: Some(0),
        },
        ..base.clone()
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_operator(&rt, SchemeKind::Csio, &r1, &r2, &cond, &faulty)
    }));
    let err = result.expect_err("a failing spill write must surface as a panic at the join");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        msg.contains("spill"),
        "panic should carry the spill failure, got: {msg}"
    );
    // Unwinding dropped the ticket, which reclaims the spill directory
    // even on the failure path.
    assert_no_leftover_spill(&base_dir);

    // The pool was not poisoned: the same runtime completes a healthy
    // budgeted query afterwards (no deadlocked workers holding slots).
    let healthy = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            spill: SpillConfig {
                budget_tuples: Some(400),
                temp_dir: Some(base_dir.clone()),
                fail_after_bytes: None,
            },
            ..base.clone()
        },
    );
    let batch = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base
        },
    );
    assert_eq!(healthy.join.output_total, batch.join.output_total);
    assert_eq!(healthy.join.checksum, batch.join.checksum);
    assert!(healthy.join.spill_bytes > 0);
    assert_no_leftover_spill(&base_dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

/// The spill-directory naming contract: every ticket's directory is a
/// distinct child of the base named `ewh-spill-<pid>-<16-hex nonce>-<seq>`.
/// The pid and nonce are fixed per process (the nonce guards against pid
/// reuse across worker restarts sharing one temp dir); the sequence makes
/// concurrent same-process queries collision-free by construction — no
/// two tickets may ever agree on a directory, even across runtimes.
#[test]
fn spill_dirs_are_nonce_unique_per_ticket() {
    let base_dir = spill_base("nonce");
    let rt_a = EngineRuntime::new(2);
    let rt_b = EngineRuntime::new(2);
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            if i % 2 == 0 {
                rt_a.admit(None)
            } else {
                rt_b.admit(None)
            }
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    let pid = std::process::id().to_string();
    let mut nonces = std::collections::HashSet::new();
    for t in &tickets {
        let dir = t.spill_dir(Some(&base_dir)).to_path_buf();
        // Idempotent: the name is fixed on first call.
        assert_eq!(dir, t.spill_dir(Some(&base_dir)));
        assert_eq!(dir.parent(), Some(base_dir.as_path()));
        let name = dir.file_name().unwrap().to_str().unwrap().to_string();
        let rest = name
            .strip_prefix("ewh-spill-")
            .unwrap_or_else(|| panic!("unexpected spill dir name: {name}"));
        let mut parts = rest.splitn(3, '-');
        assert_eq!(parts.next(), Some(pid.as_str()), "pid component: {name}");
        let nonce = parts.next().expect("nonce component");
        assert_eq!(nonce.len(), 16, "nonce must be 16 hex digits: {name}");
        assert!(nonce.chars().all(|c| c.is_ascii_hexdigit()), "{name}");
        nonces.insert(nonce.to_string());
        let seq = parts.next().expect("sequence component");
        seq.parse::<u64>()
            .unwrap_or_else(|_| panic!("sequence component: {name}"));
        assert!(
            seen.insert(dir),
            "two tickets agreed on a spill dir: {name}"
        );
    }
    assert_eq!(
        nonces.len(),
        1,
        "the startup nonce is fixed once per process, shared by every runtime"
    );
    drop(tickets);
    // Nothing was spilled, so nothing was created — and ticket drop must
    // not have invented anything either.
    assert_no_leftover_spill(&base_dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}
