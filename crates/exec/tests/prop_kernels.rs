//! Property-based oracles for the cache-conscious kernels: the loser-tree
//! k-way merge matches the pairwise 2-way merge exactly (duplicates and
//! stability included), the write-combining scatter router builds the same
//! fragments in the same order as batch-route-then-gather under adversarial
//! skew (all tuples into one region, empty regions, grouped and generic
//! paths), and zone-fence candidacy never disagrees with a real sweep.

use ewh_core::{
    ColumnBatch, GridRouter, HashRouter, IneqOp, JoinCondition, Key, KeyRange, RandomRouter, Rel,
    RouteBatch, RouteBuckets, RouteScatter, Router, Tuple,
};
use ewh_exec::{merge_sorted_runs, merge_sorted_runs_pairwise, sweep_columns, OutputWork};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sorted runs with duplicate-heavy keys; payloads encode `(run, index)` so
/// any reordering of equal keys — a stability bug — changes the output.
fn runs_strategy() -> impl Strategy<Value = Vec<ColumnBatch>> {
    prop::collection::vec(prop::collection::vec(-10i64..10, 0..60), 0..7).prop_map(|key_runs| {
        key_runs
            .into_iter()
            .enumerate()
            .map(|(r, mut keys)| {
                keys.sort_unstable();
                keys.iter()
                    .enumerate()
                    .map(|(i, &k)| Tuple::new(k, (r as u64) << 32 | i as u64))
                    .collect()
            })
            .collect()
    })
}

/// Key columns with adversarial shapes: uniform, all-one-key (every tuple
/// routes to a single region under content-sensitive routers), and
/// two-cluster (most regions stay empty).
fn keys_strategy() -> impl Strategy<Value = Vec<Key>> {
    prop_oneof![
        prop::collection::vec(-50i64..50, 0..400),
        (0..400usize, -50i64..50).prop_map(|(n, k)| vec![k; n]),
        (
            prop::collection::vec(any::<bool>(), 0..400),
            -50i64..0,
            0i64..50
        )
            .prop_map(|(picks, a, b)| picks.iter().map(|&p| if p { a } else { b }).collect()),
    ]
}

/// A router plus its region count: the content-insensitive matrix and the
/// hash partitioner take the grouped scatter fast path, the grid router the
/// generic per-destination path.
fn router_strategy() -> impl Strategy<Value = (Router, usize)> {
    prop_oneof![
        (1u32..4, 1u32..4).prop_map(|(rows, cols)| {
            let n = (rows * cols) as usize;
            (Router::Random(RandomRouter { rows, cols }), n)
        }),
        (1u32..6, 0i64..3, prop::collection::vec(-50i64..50, 0..3)).prop_map(
            |(j, beta, mut heavy)| {
                heavy.sort_unstable();
                heavy.dedup();
                (Router::Hash(HashRouter::new(j, beta, heavy)), j as usize)
            }
        ),
        Just({
            // A 2×2 key grid whose four regions each cover one cell.
            let bounds = vec![Key::MIN, 0, Key::MAX];
            let rects = [(0, 0, 0, 0), (0, 0, 1, 1), (1, 1, 0, 0), (1, 1, 1, 1)];
            let g = GridRouter::new(bounds.clone(), bounds, &rects);
            (Router::Grid(g), 4)
        }),
    ]
}

/// Sorted key-sorted batch for the sweep fence oracle.
fn sorted_batch_strategy(max_len: usize) -> impl Strategy<Value = ColumnBatch> {
    prop::collection::vec(-40i64..40, 0..max_len).prop_map(|mut keys| {
        keys.sort_unstable();
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u64))
            .collect()
    })
}

fn cond_strategy() -> impl Strategy<Value = JoinCondition> {
    prop_oneof![
        Just(JoinCondition::Equi),
        (0i64..4).prop_map(|beta| JoinCondition::Band { beta }),
        Just(JoinCondition::Inequality(IneqOp::Lt)),
        Just(JoinCondition::Inequality(IneqOp::Ge)),
    ]
}

/// The inclusive key coverage of a sorted batch (what the reducer fences
/// build state and probe chunks with).
fn zone_of(batch: &ColumnBatch) -> KeyRange {
    if batch.is_empty() {
        KeyRange::empty()
    } else {
        KeyRange::new(batch.keys()[0], batch.keys()[batch.len() - 1])
    }
}

proptest! {
    #[test]
    fn loser_tree_merge_matches_pairwise_oracle(runs in runs_strategy()) {
        let merged = merge_sorted_runs(runs.clone());
        let oracle = merge_sorted_runs_pairwise(runs.clone());
        // Exact equality — payload order included — proves the loser tree
        // keeps the pairwise merge's stability on duplicate keys.
        prop_assert_eq!(merged.to_tuples(), oracle.to_tuples());
        let total: usize = runs.iter().map(|r| r.len()).sum();
        prop_assert_eq!(oracle.len(), total);
        prop_assert!(oracle.is_sorted_by_key());
    }

    #[test]
    fn scatter_routing_matches_bucket_gather_under_skew(
        keys in keys_strategy(),
        router_regions in router_strategy(),
        rel in prop_oneof![Just(Rel::R1), Just(Rel::R2)],
        seed in any::<u64>(),
    ) {
        let (router, n_regions) = router_regions;
        let payloads: Vec<u64> = (0..keys.len() as u64).map(|i| i << 8 | 0xE1).collect();

        let mut buckets = RouteBuckets::new(n_regions);
        let mut rng = SmallRng::seed_from_u64(seed);
        router.route_batch(rel, &keys, &mut rng, &mut buckets);
        let oracle_after: u64 = rng.gen();

        let mut scatter = RouteScatter::new(n_regions);
        let mut rng = SmallRng::seed_from_u64(seed);
        router.route_scatter(rel, &keys, &payloads, &mut rng, &mut scatter);
        let scatter_after: u64 = rng.gen();

        // Same RNG consumption, same first-touch region order, and every
        // fragment bit-identical to the gather of the bucket path.
        prop_assert_eq!(scatter_after, oracle_after);
        prop_assert_eq!(scatter.touched().to_vec(), buckets.touched().to_vec());
        for (slot, &region) in buckets.touched().iter().enumerate() {
            let expect =
                ColumnBatch::gather_from(&keys, &payloads, buckets.region(region));
            let got = scatter.take_fragment(slot);
            prop_assert_eq!(got, expect, "region {} fragment diverged", region);
        }
    }

    #[test]
    fn zone_fences_never_disagree_with_a_real_sweep(
        build in sorted_batch_strategy(150),
        probe in sorted_batch_strategy(150),
        cond in cond_strategy(),
    ) {
        let (count, checksum) = sweep_columns(&build, &probe, &cond, OutputWork::Touch);
        // The fenced path skips the sweep when candidacy fails; that skip
        // must be provably lossless.
        if !cond.candidate(&zone_of(&build), &zone_of(&probe)) {
            prop_assert_eq!((count, checksum), (0, 0), "fence would drop output");
        }
        // And a produced pair implies candidacy (the contrapositive, so
        // both directions of the fence contract are pinned).
        if count > 0 {
            prop_assert!(cond.candidate(&zone_of(&build), &zone_of(&probe)));
        }
    }
}
