//! Property-based correctness of *concurrent* query execution on one
//! shared [`EngineRuntime`]: 2–4 chained query plans with mixed
//! partitioning schemes run simultaneously on a single fixed-size worker
//! pool — with run-time migration thresholds forced so the coordinator
//! fires on any imbalance — and every query's `output_total` and XOR
//! `checksum` must be bit-identical to its own serial
//! [`run_plan_materialized`] batch oracle.
//!
//! This is the multi-tenant extension of `prop_migration.rs` /
//! `prop_plan.rs`: queries contend for the same workers, steal each
//! other's deque slots, and interleave at every cooperative yield point
//! (queue push/pop, exchange push/pop, admission), so any cross-query leak
//! — a fragment routed to another query's reducer, a seal observed across
//! plans, migration state crossing tenants — shows up as a wrong count or
//! checksum here.

use std::thread;

use ewh_core::{JoinCondition, Key, SchemeKind, Tuple};
use ewh_exec::{
    run_plan, run_plan_materialized, AdaptiveConfig, ChainStage, EngineRuntime, OperatorConfig,
    SpillConfig, StageSpec,
};
use proptest::prelude::*;

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0i64..50, 0..max_len)
}

fn scheme_strategy() -> impl Strategy<Value = SchemeKind> {
    prop_oneof![
        Just(SchemeKind::Ci),
        Just(SchemeKind::Csi),
        Just(SchemeKind::Csio),
        Just(SchemeKind::Hash),
    ]
}

/// Thresholds at which any observed imbalance migrates (the
/// `prop_migration.rs` forcing config), so concurrent runs exercise the
/// Migrate/Adopt/fence path under cross-query scheduling noise.
fn forced_migration() -> AdaptiveConfig {
    AdaptiveConfig {
        reassign: true,
        move_cost_factor: 0.0,
        migrate_backlog_tuples: 1,
        poll_micros: 20,
        ..Default::default()
    }
}

/// One query of the concurrent batch: a root join plus an optional second
/// hop, all inputs owned.
struct Query {
    a: Vec<Tuple>,
    b: Vec<Tuple>,
    c: Option<Vec<Tuple>>,
    first: StageSpec,
    chain_kind: SchemeKind,
    cfg: OperatorConfig,
}

impl Query {
    fn chain(&self) -> Vec<ChainStage<'_>> {
        self.c
            .as_deref()
            .map(|base| {
                vec![ChainStage {
                    base,
                    spec: StageSpec {
                        kind: self.chain_kind,
                        cond: JoinCondition::Equi,
                    },
                }]
            })
            .unwrap_or_default()
    }
}

proptest! {
    // Each case runs up to 4 plans twice (oracle + concurrent); keep the
    // case count modest — the point is the interleavings, and every case
    // explores fresh ones on the shared pool.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_plans_on_one_runtime_match_their_serial_oracles(
        queries in prop::collection::vec(
            (
                keys_strategy(180),
                keys_strategy(180),
                (0u64..2, keys_strategy(120)),
                scheme_strategy(),
                scheme_strategy(),
                0u64..1000,
            ),
            2..=4,
        ),
        workers in 1usize..5,
    ) {
        let queries: Vec<Query> = queries
            .into_iter()
            .map(|(ka, kb, (two_hop, kc), root_kind, chain_kind, seed)| Query {
                a: tuples(&ka),
                b: tuples(&kb),
                c: (two_hop == 1).then(|| tuples(&kc)),
                first: StageSpec { kind: root_kind, cond: JoinCondition::Equi },
                chain_kind,
                cfg: OperatorConfig {
                    j: 4,
                    threads: 4,
                    seed,
                    morsel_tuples: 64,
                    queue_tuples: 128,
                    exchange_tuples: 512,
                    stats_cutoff_tuples: 100,
                    adaptive: forced_migration(),
                    ..Default::default()
                },
            })
            .collect();

        // Serial batch oracles (no runtime involved: the materialized
        // baseline runs on the batch path).
        let oracles: Vec<(u64, u64)> = queries
            .iter()
            .map(|q| {
                let mat = run_plan_materialized(&q.a, &q.b, &q.first, &q.chain(), &q.cfg);
                (mat.output_total, mat.checksum)
            })
            .collect();

        // All plans at once on one shared pool (client threads only carry
        // the blocking plan drivers; every engine task lands on the pool).
        let rt = EngineRuntime::new(workers);
        let results: Vec<(u64, u64)> = thread::scope(|s| {
            let handles: Vec<_> = queries
                .iter()
                .map(|q| {
                    let rt = &rt;
                    s.spawn(move || {
                        let run = run_plan(rt, &q.a, &q.b, &q.first, &q.chain(), &q.cfg);
                        (run.output_total, run.checksum)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("concurrent plan panicked"))
                .collect()
        });

        for (i, (got, want)) in results.iter().zip(&oracles).enumerate() {
            prop_assert_eq!(
                got.0, want.0,
                "query {} output drifted under concurrency (workers {})",
                i, workers
            );
            prop_assert_eq!(
                got.1, want.1,
                "query {} checksum drifted under concurrency (workers {})",
                i, workers
            );
        }
        // The pool really multiplexed everything: no query brought its own
        // workers.
        prop_assert_eq!(rt.workers(), workers);
        prop_assert!(rt.metrics().tasks_completed > 0);
    }
}

/// The waker path under forced spill: three concurrent tenants each run
/// with a spill budget of a *quarter* of the query's unbudgeted resident
/// peak, so reducers continually shed state to disk and re-load it while
/// mappers park on the tiny queues feeding them. Spill writes and reloads
/// happen inside reducer polls between park/unpark cycles, so a wake lost
/// across a spill boundary (a reducer parked on a queue while its state
/// sits on disk) would deadlock here, and a mis-ordered wake would drift
/// the output, which the serial batch oracle comparison catches.
#[test]
fn concurrent_quarter_budget_spilling_tenants_match_their_oracles() {
    let keys: Vec<Key> = (0..4000).map(|i| (i % 120) as Key).collect();
    let (a, b) = (tuples(&keys), tuples(&keys));
    let first = StageSpec {
        kind: SchemeKind::Csio,
        cond: JoinCondition::Equi,
    };
    let base = OperatorConfig {
        j: 4,
        threads: 6,
        morsel_tuples: 64,
        queue_tuples: 128,
        exchange_tuples: 512,
        stats_cutoff_tuples: 100,
        adaptive: forced_migration(),
        ..Default::default()
    };

    let oracle = run_plan_materialized(&a, &b, &first, &[], &base);
    assert!(oracle.output_total > 0);

    // Learn the unbudgeted resident peak, then squeeze each tenant under
    // a quarter of it so spilling is structurally forced.
    let rt = EngineRuntime::new(3);
    let unbudgeted = run_plan(&rt, &a, &b, &first, &[], &base);
    let quarter = (unbudgeted.peak_resident_bytes / ewh_core::TUPLE_BYTES / 4).max(1);
    let budgeted = OperatorConfig {
        spill: SpillConfig {
            budget_tuples: Some(quarter),
            temp_dir: None,
            fail_after_bytes: None,
        },
        ..base
    };

    let runs = thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (rt, a, b, first, budgeted) = (&rt, &a, &b, &first, &budgeted);
                s.spawn(move || run_plan(rt, a, b, first, &[], budgeted))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("budgeted tenant panicked"))
            .collect::<Vec<_>>()
    });
    for (q, run) in runs.iter().enumerate() {
        assert_eq!(
            run.output_total, oracle.output_total,
            "tenant {q}: output drifted under quarter-budget spilling"
        );
        assert_eq!(
            run.checksum, oracle.checksum,
            "tenant {q}: checksum drifted under quarter-budget spilling"
        );
        assert!(
            run.total.spill_bytes > 0,
            "tenant {q}: a quarter budget must actually force spilling \
             (peak {} tuples, budget {quarter})",
            unbudgeted.peak_resident_bytes / ewh_core::TUPLE_BYTES
        );
    }
    // Parks and wakes really happened around the spill boundaries.
    assert!(rt.metrics().wakeups > 0, "no waker activity under pressure");
}

/// Fault isolation across tenants: a spilling query whose spill writes
/// fail (injected `fail_after_bytes: Some(0)`) must cancel cleanly — its
/// panic surfaces at *its* plan join — while a healthy co-tenant sharing
/// the same pool workers finishes exactly and on time. A deadlocked pool
/// task or a cross-query cancel leak would hang or corrupt the healthy
/// side.
#[test]
fn failing_spilling_tenant_does_not_poison_a_healthy_co_tenant() {
    let keys: Vec<Key> = (0..3000).map(|i| (i % 150) as Key).collect();
    let (a, b) = (tuples(&keys), tuples(&keys));
    let first = StageSpec {
        kind: SchemeKind::Csio,
        cond: JoinCondition::Equi,
    };
    let base = OperatorConfig {
        j: 4,
        threads: 4,
        morsel_tuples: 64,
        queue_tuples: 128,
        exchange_tuples: 512,
        stats_cutoff_tuples: 100,
        adaptive: forced_migration(),
        ..Default::default()
    };
    let faulty = OperatorConfig {
        spill: SpillConfig {
            budget_tuples: Some(64),
            temp_dir: None,
            fail_after_bytes: Some(0),
        },
        ..base.clone()
    };

    let oracle = run_plan_materialized(&a, &b, &first, &[], &base);
    assert!(oracle.output_total > 0);

    let rt = EngineRuntime::new(3);
    let (faulty_result, healthy_run) = thread::scope(|s| {
        let rt = &rt;
        let faulty_handle = s.spawn({
            let (a, b, first, faulty) = (&a, &b, &first, &faulty);
            move || run_plan(rt, a, b, first, &[], faulty)
        });
        let healthy_handle = s.spawn({
            let (a, b, first, base) = (&a, &b, &first, &base);
            move || run_plan(rt, a, b, first, &[], base)
        });
        (
            faulty_handle.join(),
            healthy_handle.join().expect("healthy co-tenant panicked"),
        )
    });
    assert!(
        faulty_result.is_err(),
        "the spill-faulted tenant must cancel with a panic at its plan join"
    );
    assert_eq!(healthy_run.output_total, oracle.output_total);
    assert_eq!(healthy_run.checksum, oracle.checksum);

    // The pool survives for the next admission: rerun the healthy plan.
    let again = run_plan(&rt, &a, &b, &first, &[], &base);
    assert_eq!(again.output_total, oracle.output_total);
    assert_eq!(again.checksum, oracle.checksum);
}
