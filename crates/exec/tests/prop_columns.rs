//! Property-based correctness of the columnar tuple layout: any tuple
//! sequence round-trips `Vec<Tuple>` → `ColumnBatch` → `Vec<Tuple>`
//! losslessly, the permutation sort matches the AoS stable sort exactly
//! (order included), gather/split/truncate mirror their `Vec` twins, and
//! the columnar spill format (count prefix + key slab + payload slab)
//! replays any batch bit-identically through a real `SpillContext`.

use ewh_core::{ColumnBatch, Key, Tuple, TUPLE_BYTES};
use ewh_exec::SpillContext;
use proptest::prelude::*;

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (any::<i64>(), any::<u64>()).prop_map(|(k, p)| Tuple::new(k, p))
}

fn tuples_strategy(max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(tuple_strategy(), 0..max_len)
}

proptest! {
    #[test]
    fn tuples_round_trip_through_columns(tuples in tuples_strategy(300)) {
        let batch = ColumnBatch::from_tuples(&tuples);
        prop_assert_eq!(batch.len(), tuples.len());
        prop_assert_eq!(batch.to_tuples(), tuples.clone());
        // Column views agree with the struct view position by position.
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(batch.keys()[i], t.key);
            prop_assert_eq!(batch.payloads()[i], t.payload);
            prop_assert_eq!(batch.tuple(i), *t);
        }
        let collected: ColumnBatch = tuples.iter().copied().collect();
        prop_assert_eq!(collected, batch);
    }

    #[test]
    fn permutation_sort_matches_the_stable_aos_sort(
        // A narrow key domain forces duplicate keys, so stability (ties
        // keep arrival order) is genuinely exercised.
        keys in prop::collection::vec(-20i64..20, 0..300)
    ) {
        let tuples: Vec<Tuple> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u64))
            .collect();
        let mut batch = ColumnBatch::from_tuples(&tuples);
        batch.sort_by_key();
        let mut expect = tuples;
        expect.sort_by_key(|t| t.key);
        prop_assert!(batch.is_sorted_by_key());
        prop_assert_eq!(batch.to_tuples(), expect);
    }

    #[test]
    fn split_and_truncate_mirror_vec_semantics(
        tuples in tuples_strategy(200),
        at_pct in 0usize..=100,
    ) {
        let at = tuples.len() * at_pct / 100;
        let mut batch = ColumnBatch::from_tuples(&tuples);
        let tail = batch.split_off(at);
        prop_assert_eq!(batch.to_tuples(), tuples[..at].to_vec());
        prop_assert_eq!(tail.to_tuples(), tuples[at..].to_vec());

        let mut again = ColumnBatch::from_tuples(&tuples);
        again.truncate(at);
        prop_assert_eq!(again.to_tuples(), tuples[..at].to_vec());
    }

    #[test]
    fn gather_picks_the_indexed_tuples(
        tuples in prop::collection::vec(tuple_strategy(), 1..100),
        raw_indices in prop::collection::vec(any::<u32>(), 0..150),
    ) {
        let indices: Vec<u32> = raw_indices
            .into_iter()
            .map(|i| i % tuples.len() as u32)
            .collect();
        let batch = ColumnBatch::from_tuples(&tuples);
        let gathered = batch.gather(&indices);
        let expect: Vec<Tuple> = indices.iter().map(|&i| tuples[i as usize]).collect();
        prop_assert_eq!(gathered.to_tuples(), expect);
    }

    #[test]
    fn spill_runs_replay_any_batch_bit_identically(tuples in tuples_strategy(400)) {
        let dir = std::env::temp_dir().join(format!(
            "ewh-prop-columns-{}-{}",
            std::process::id(),
            tuples.len(),
        ));
        let ctx = SpillContext::new(dir.clone(), None);
        let batch = ColumnBatch::from_tuples(&tuples);
        let run = ctx.write_batch(&batch).expect("spill write failed");
        prop_assert_eq!(run.tuples(), tuples.len() as u64);
        // Accounting is exact per-column bytes: 8-byte count prefix plus
        // 16 bytes (one key + one payload) per tuple.
        prop_assert_eq!(ctx.spill_bytes(), 8 + tuples.len() as u64 * TUPLE_BYTES);
        let replayed = ctx.read_run(&run).expect("spill read failed");
        prop_assert_eq!(replayed, batch);
        ctx.remove_run(&run);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The columnar layout is the engine-side representation; `Vec<Tuple>`
/// remains the oracle's. This pin keeps the two convertible without loss
/// at the extremes of the key/payload domains.
#[test]
fn extreme_values_survive_the_transpose() {
    let tuples = vec![
        Tuple::new(Key::MIN, u64::MAX),
        Tuple::new(Key::MAX, 0),
        Tuple::new(0, u64::MAX / 2),
    ];
    let batch = ColumnBatch::from_tuples(&tuples);
    assert_eq!(batch.to_tuples(), tuples);
}
