//! Execution-engine integration tests: shuffle determinism, load accounting,
//! CI's statistical output balance, and failure-ish corners.

use ewh_core::{
    build_ci, build_csio, CostModel, HistogramParams, JoinCondition, Key, SchemeKind, Tuple,
    TUPLE_BYTES,
};
use ewh_exec::{
    assign_regions, execute_join, run_operator, shuffle, EngineRuntime, OperatorConfig, OutputWork,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

fn random_keys(n: usize, domain: i64, seed: u64) -> Vec<Key> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

#[test]
fn grid_shuffle_is_identical_across_thread_counts() {
    let k = random_keys(5000, 2000, 1);
    let (r1, r2) = (tuples(&k), tuples(&k));
    let keys: Vec<Key> = k.clone();
    let cond = JoinCondition::Band { beta: 2 };
    let params = HistogramParams {
        j: 6,
        ..Default::default()
    };
    let scheme = build_csio(&keys, &keys, &cond, &CostModel::band(), &params);

    let base = shuffle(&r1, &r2, &scheme, 1, 42);
    for threads in [2usize, 3, 8] {
        let other = shuffle(&r1, &r2, &scheme, threads, 42);
        assert_eq!(other.network_tuples, base.network_tuples);
        // Same multiset per region (order may differ across threads).
        for (a, b) in base.r1.iter().zip(&other.r1) {
            let mut x: Vec<_> = a.iter().map(|t| (t.key, t.payload)).collect();
            let mut y: Vec<_> = b.iter().map(|t| (t.key, t.payload)).collect();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }
}

#[test]
fn ci_output_balance_is_statistical() {
    // 1-Bucket's core property: near-equal output per region regardless of
    // key skew (§II-A: "almost equal-area regions have almost equal output").
    let mut keys = vec![500i64; 4000]; // heavy hitter
    keys.extend(random_keys(4000, 1000, 2));
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cond = JoinCondition::Band { beta: 1 };
    let cfg = OperatorConfig {
        j: 8,
        threads: 2,
        ..Default::default()
    };
    let run = run_operator(
        &EngineRuntime::new(4),
        SchemeKind::Ci,
        &r1,
        &r2,
        &cond,
        &cfg,
    );
    let max = run.join.per_worker_output.iter().copied().max().unwrap() as f64;
    let mean = run.join.output_total as f64 / 8.0;
    assert!(max / mean < 1.25, "CI output imbalance {}", max / mean);
}

#[test]
fn mem_accounting_equals_network_volume_times_tuple_bytes() {
    let k = random_keys(2000, 800, 3);
    let (r1, r2) = (tuples(&k), tuples(&k));
    let scheme = build_ci(4, 2000, 2000, None);
    let sh = shuffle(&r1, &r2, &scheme, 2, 4);
    assert_eq!(sh.mem_bytes(), sh.network_tuples * TUPLE_BYTES);
    let per: u64 = sh.per_region_input().iter().sum();
    assert_eq!(per, sh.network_tuples);
}

#[test]
fn execute_join_aggregates_region_loads_per_worker() {
    let k = random_keys(3000, 600, 5);
    let (r1, r2) = (tuples(&k), tuples(&k));
    let keys = k.clone();
    let cond = JoinCondition::Equi;
    let params = HistogramParams {
        j: 8,
        ..Default::default()
    };
    let scheme = build_csio(&keys, &keys, &cond, &CostModel::band(), &params);
    let cfg = OperatorConfig {
        j: 2,
        threads: 2,
        ..Default::default()
    };
    // Fold all regions onto 2 workers.
    let map: Vec<u32> = (0..scheme.num_regions()).map(|r| (r % 2) as u32).collect();
    let sh = shuffle(&r1, &r2, &scheme, 2, 6);
    let total_in = sh.network_tuples;
    let stats = execute_join(sh, &cond, &map, &cfg);
    assert_eq!(stats.per_worker_input.len(), 2);
    assert_eq!(stats.per_worker_input.iter().sum::<u64>(), total_in);
    assert_eq!(
        stats.per_worker_output.iter().sum::<u64>(),
        stats.output_total
    );
}

#[test]
fn lpt_assignment_balances_unequal_regions() {
    let k = random_keys(10_000, 4000, 7);
    let keys = k.clone();
    let cond = JoinCondition::Band { beta: 2 };
    let cost = CostModel::band();
    let params = HistogramParams {
        j: 12,
        ..Default::default()
    };
    let scheme = build_csio(&keys, &keys, &cond, &cost, &params);
    // 12 regions onto 3 equal workers: LPT loads within 2x of each other.
    let map = assign_regions(&scheme, 3, None, &cost);
    assert_eq!(map.len(), scheme.num_regions());
    let mut loads = [0u64; 3];
    for (r, &w) in map.iter().enumerate() {
        loads[w as usize] += scheme.regions[r].est_weight(&cost);
    }
    let max = *loads.iter().max().unwrap() as f64;
    let min = *loads.iter().min().unwrap().max(&1) as f64;
    assert!(max / min < 2.0, "LPT loads {loads:?}");
}

#[test]
fn zero_capacity_worker_is_rejected() {
    let scheme = build_ci(4, 100, 100, None);
    let cost = CostModel::band();
    // Capacities length mismatch must panic (programming error surface).
    let result = std::panic::catch_unwind(|| {
        assign_regions(&scheme, 3, Some(&[1.0, 1.0]), &cost);
    });
    assert!(result.is_err(), "length mismatch should panic");
}

#[test]
fn sim_time_scales_inversely_with_units_per_sec() {
    let k = random_keys(2000, 500, 8);
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cond = JoinCondition::Band { beta: 1 };
    let slow = OperatorConfig {
        j: 4,
        units_per_sec: 1e6,
        ..Default::default()
    };
    let fast = OperatorConfig {
        j: 4,
        units_per_sec: 4e6,
        ..Default::default()
    };
    let rt = EngineRuntime::new(4);
    let a = run_operator(&rt, SchemeKind::Csio, &r1, &r2, &cond, &slow);
    let b = run_operator(&rt, SchemeKind::Csio, &r1, &r2, &cond, &fast);
    assert_eq!(a.join.max_weight_milli, b.join.max_weight_milli);
    let ratio = a.join.sim_join_secs / b.join.sim_join_secs;
    assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
}

#[test]
fn hash_scheme_runs_end_to_end_on_band_join() {
    let k1 = random_keys(4000, 1500, 9);
    let k2 = random_keys(4000, 1500, 10);
    let cond = JoinCondition::Band { beta: 2 };
    let (r1, r2) = (tuples(&k1), tuples(&k2));
    let cfg = OperatorConfig {
        j: 8,
        threads: 2,
        ..Default::default()
    };
    let rt = EngineRuntime::new(4);
    let expect = run_operator(&rt, SchemeKind::Csio, &r1, &r2, &cond, &cfg)
        .join
        .output_total;
    let run = run_operator(&rt, SchemeKind::Hash, &r1, &r2, &cond, &cfg);
    assert_eq!(run.join.output_total, expect);
    // The 2β+1 fan-out must show in the network volume.
    assert!(
        run.join.network_tuples > 3 * (r1.len() as u64),
        "expected band replication, got {}",
        run.join.network_tuples
    );
}

#[test]
fn count_mode_is_not_slower_than_touch_on_big_outputs() {
    // Smoke check that OutputWork::Count skips the per-output work: equal
    // counts, zero checksum (also covered in unit tests; here end-to-end).
    let k = vec![1i64; 1500];
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cfg = OperatorConfig {
        j: 4,
        output_work: OutputWork::Count,
        ..Default::default()
    };
    let run = run_operator(
        &EngineRuntime::new(4),
        SchemeKind::Ci,
        &r1,
        &r2,
        &JoinCondition::Equi,
        &cfg,
    );
    assert_eq!(run.join.output_total, 1500 * 1500);
    assert_eq!(run.join.checksum, 0);
}
