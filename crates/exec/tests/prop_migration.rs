//! Property-based correctness of run-time region migration: with the
//! coordinator's thresholds forced to fire on tiny inputs (any backlog
//! qualifies, free moves, fast polls) and an injected straggler maximizing
//! idle-while-backlogged windows, the pipelined engine must still produce
//! exactly the `ExecMode::Batch` oracle's `output_total` and XOR `checksum`
//! for all four scheme kinds. This certifies the whole Migrate/Adopt
//! handshake, the per-region epoch fence (parking + forwarding), and the
//! quiescence-driven `Finish` termination under adversarial interleavings.

use ewh_core::{JoinCondition, Key, SchemeKind, Tuple};
use ewh_exec::{run_operator, AdaptiveConfig, EngineRuntime, ExecMode, OperatorConfig, Straggler};
use proptest::prelude::*;

fn condition_strategy() -> impl Strategy<Value = JoinCondition> {
    // Equi and Band only: the Hash scheme supports nothing else.
    prop_oneof![
        Just(JoinCondition::Equi),
        (0i64..4).prop_map(|beta| JoinCondition::Band { beta }),
    ]
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0i64..60, 0..max_len)
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

/// Thresholds at which any observed imbalance migrates: 1-tuple backlogs
/// qualify, moves are free, and the coordinator polls as fast as the shim
/// allows.
fn forced_migration() -> AdaptiveConfig {
    AdaptiveConfig {
        reassign: true,
        move_cost_factor: 0.0,
        migrate_backlog_tuples: 1,
        poll_micros: 20,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn migrating_engine_equals_batch_oracle(
        k1 in keys_strategy(220),
        k2 in keys_strategy(220),
        cond in condition_strategy(),
        j in 1usize..7,
        seed in 0u64..1000,
        morsel_tuples in 1usize..160,
        slow_nanos in prop_oneof![Just(0u64), Just(20_000u64)],
    ) {
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let rt = EngineRuntime::new(4);
        let base = OperatorConfig {
            j,
            threads: 4,
            seed,
            morsel_tuples,
            // Tiny queues widen the backpressure/idle windows the
            // coordinator reacts to.
            queue_tuples: 64,
            ..Default::default()
        };
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio, SchemeKind::Hash] {
            let batch = run_operator(
                &rt,
                kind,
                &r1,
                &r2,
                &cond,
                &OperatorConfig { mode: ExecMode::Batch, ..base.clone() },
            );
            let migrating = run_operator(
                &rt,
                kind,
                &r1,
                &r2,
                &cond,
                &OperatorConfig {
                    mode: ExecMode::Pipelined,
                    adaptive: forced_migration(),
                    straggler: (slow_nanos > 0).then_some(Straggler {
                        reducer: 0,
                        nanos_per_tuple: slow_nanos,
                    }),
                    ..base.clone()
                },
            );
            prop_assert_eq!(
                migrating.join.output_total,
                batch.join.output_total,
                "{} {:?} morsel={} slow={}",
                kind,
                cond,
                morsel_tuples,
                slow_nanos
            );
            prop_assert_eq!(
                migrating.join.checksum,
                batch.join.checksum,
                "{} {:?} checksum",
                kind,
                cond
            );
        }
    }
}

/// Deterministic companion: a hard-slowed reducer with forced thresholds
/// *must* migrate at least one region, and the join must stay exact — so
/// the suite cannot silently pass without ever exercising a migration.
#[test]
fn forced_straggler_migrates_and_matches_oracle() {
    let keys: Vec<Key> = (0..3000).map(|i| (i % 150) as Key).collect();
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cond = JoinCondition::Equi;
    let base = OperatorConfig {
        j: 8,
        threads: 4,
        morsel_tuples: 128,
        queue_tuples: 256,
        ..Default::default()
    };
    let rt = EngineRuntime::new(4);
    let batch = run_operator(
        &rt,
        SchemeKind::Ci,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base.clone()
        },
    );
    let migrating = run_operator(
        &rt,
        SchemeKind::Ci,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            adaptive: forced_migration(),
            straggler: Some(Straggler {
                reducer: 0,
                nanos_per_tuple: 30_000,
            }),
            ..base
        },
    );
    assert_eq!(migrating.join.output_total, batch.join.output_total);
    assert_eq!(migrating.join.checksum, batch.join.checksum);
    assert!(
        migrating.join.regions_migrated >= 1,
        "forced thresholds with a hard straggler must migrate"
    );
    assert!(migrating.join.migration_tuples > 0);
}
