//! Property-based equivalence of the two plan executors: for arbitrary
//! base relations, every scheme kind, and Equi/Band conditions, the
//! pipelined two-hop plan (streamed intermediate + online statistics +
//! cross-operator seals) must produce exactly the materialized baseline's
//! final `output_total` and XOR `checksum` — the baseline runs each
//! operator on the batch path over a fully materialized intermediate and
//! is trivially correct, so agreement certifies the exchange protocol, the
//! sampled downstream scheme build, and the chained termination end to
//! end. Also exercised with migration thresholds forced to fire on every
//! stage.

use ewh_core::{JoinCondition, Key, SchemeKind, Tuple};
use ewh_exec::{
    run_plan, run_plan_materialized, ChainStage, EngineRuntime, OperatorConfig, StageSpec,
};
use proptest::prelude::*;

fn condition_strategy() -> impl Strategy<Value = JoinCondition> {
    // Equi and Band only: the Hash scheme supports nothing else.
    prop_oneof![
        Just(JoinCondition::Equi),
        (0i64..4).prop_map(|beta| JoinCondition::Band { beta }),
    ]
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0i64..60, 0..max_len)
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

fn plan_config(seed: u64, morsel_tuples: usize, force_migration: bool) -> OperatorConfig {
    let mut cfg = OperatorConfig {
        j: 4,
        threads: 3,
        seed,
        morsel_tuples,
        queue_tuples: 256,
        exchange_tuples: 512,
        stats_cutoff_tuples: 64,
        stats_reservoir_tuples: 64,
        ..Default::default()
    };
    if force_migration {
        cfg.threads = 4;
        cfg.adaptive.reassign = true;
        cfg.adaptive.migrate_backlog_tuples = 1;
        cfg.adaptive.poll_micros = 50;
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn pipelined_plan_equals_materialized_oracle(
        k1 in keys_strategy(150),
        k2 in keys_strategy(150),
        k3 in keys_strategy(150),
        cond1 in condition_strategy(),
        cond2 in condition_strategy(),
        seed in 0u64..1000,
        morsel_tuples in 1usize..200,
    ) {
        let (a, b, c) = (tuples(&k1), tuples(&k2), tuples(&k3));
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio, SchemeKind::Hash] {
            let first = StageSpec { kind, cond: cond1 };
            let chain = [ChainStage { base: &c, spec: StageSpec { kind, cond: cond2 } }];
            for force_migration in [false, true] {
                let cfg = plan_config(seed, morsel_tuples, force_migration);
                let pipe = run_plan(&EngineRuntime::new(4), &a, &b, &first, &chain, &cfg);
                let mat = run_plan_materialized(&a, &b, &first, &chain, &cfg);
                prop_assert_eq!(
                    pipe.output_total,
                    mat.output_total,
                    "{} {:?}/{:?} morsel={} migration={}",
                    kind,
                    cond1,
                    cond2,
                    morsel_tuples,
                    force_migration
                );
                prop_assert_eq!(
                    pipe.checksum,
                    mat.checksum,
                    "{} {:?}/{:?} checksum (migration={})",
                    kind,
                    cond1,
                    cond2,
                    force_migration
                );
                // Stage-level output sizes agree too: the streamed
                // intermediate is the materialized one, tuple for tuple.
                prop_assert_eq!(pipe.intermediate_tuples(), mat.intermediate_tuples());
            }
        }
    }
}
