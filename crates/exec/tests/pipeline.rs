//! Integration tests of the morsel-driven pipelined engine: oracle
//! equivalence, peak-memory discipline, stress configurations (tiny queues,
//! single-tuple morsels), the LPT hot-region fix, and the adaptive
//! fallback's plan reuse.

use ewh_core::{
    build_csio, CostModel, HistogramParams, JoinCondition, Key, SchemeKind, Tuple, TUPLE_BYTES,
};
use ewh_exec::{
    execute_join, lpt_schedule, run_operator, run_operator_adaptive, shuffle, EngineRuntime,
    ExecMode, FallbackPolicy, OperatorConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn test_rt() -> EngineRuntime {
    EngineRuntime::new(4)
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

fn random_keys(n: usize, domain: i64, seed: u64) -> Vec<Key> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

fn skewed_keys(n: usize, seed: u64) -> Vec<Key> {
    // Half the tuples on one hot key, the rest uniform.
    let mut keys = random_keys(n / 2, 2000, seed);
    keys.extend(std::iter::repeat_n(777, n - keys.len()));
    keys
}

#[test]
fn pipelined_matches_batch_on_every_scheme() {
    let k1 = skewed_keys(6000, 21);
    let k2 = skewed_keys(6000, 22);
    let cond = JoinCondition::Band { beta: 1 };
    let (r1, r2) = (tuples(&k1), tuples(&k2));
    let rt = test_rt();
    for kind in [
        SchemeKind::Ci,
        SchemeKind::Csi,
        SchemeKind::Csio,
        SchemeKind::Hash,
    ] {
        let base = OperatorConfig {
            j: 8,
            threads: 4,
            ..Default::default()
        };
        let batch = run_operator(
            &rt,
            kind,
            &r1,
            &r2,
            &cond,
            &OperatorConfig {
                mode: ExecMode::Batch,
                ..base.clone()
            },
        );
        let pipe = run_operator(
            &rt,
            kind,
            &r1,
            &r2,
            &cond,
            &OperatorConfig {
                mode: ExecMode::Pipelined,
                ..base
            },
        );
        assert_eq!(pipe.join.output_total, batch.join.output_total, "{kind}");
        assert_eq!(pipe.join.checksum, batch.join.checksum, "{kind}");
    }
}

#[test]
fn pipelined_peak_memory_is_strictly_below_full_materialization() {
    let k1 = skewed_keys(12_000, 31);
    let k2 = skewed_keys(12_000, 32);
    let cond = JoinCondition::Band { beta: 2 };
    let (r1, r2) = (tuples(&k1), tuples(&k2));
    let cfg = OperatorConfig {
        j: 16,
        threads: 4,
        ..Default::default()
    };
    let run = run_operator(&test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &cfg);
    // mem_bytes models the full shuffle; the engine must stay strictly
    // below it (the probe side streams through in chunks).
    assert!(
        run.join.peak_resident_bytes < run.join.mem_bytes,
        "peak {} !< full materialization {}",
        run.join.peak_resident_bytes,
        run.join.mem_bytes
    );
    // Sanity on the pipeline metrics: every morsel routed, reducers
    // reported time, accounting is in tuples × TUPLE_BYTES.
    let expect_morsels =
        r1.len().div_ceil(cfg.morsel_tuples) + r2.len().div_ceil(cfg.morsel_tuples);
    assert_eq!(run.join.morsels_routed as usize, expect_morsels);
    assert!(!run.join.reducer_busy_secs.is_empty());
    assert_eq!(
        run.join.reducer_busy_secs.len(),
        run.join.reducer_idle_secs.len()
    );
    assert!(run.join.backpressure_secs >= 0.0);
    assert_eq!(run.join.peak_resident_bytes % TUPLE_BYTES, 0);
}

#[test]
fn tiny_queues_and_single_tuple_morsels_stay_correct() {
    // Stress the seal protocol: every tuple is its own morsel and queues
    // hold one batch, maximizing backpressure and interleavings.
    let k = random_keys(400, 60, 41);
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cond = JoinCondition::Equi;
    let base = OperatorConfig {
        j: 4,
        threads: 4,
        ..Default::default()
    };
    let rt = test_rt();
    let expect = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base.clone()
        },
    );
    let stressed = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            morsel_tuples: 1,
            queue_tuples: 1,
            ..base
        },
    );
    assert_eq!(stressed.join.output_total, expect.join.output_total);
    assert_eq!(stressed.join.checksum, expect.join.checksum);
    assert_eq!(stressed.join.morsels_routed, 800);
}

#[test]
fn lpt_gives_a_dominant_region_a_thread_of_its_own() {
    // Satellite regression: one hot region among many light ones. The old
    // round-robin interleave put regions {0, 4} on the same thread, so the
    // hot thread carried 1000 + 1 units; LPT must leave the hot region
    // alone (makespan == the hot region itself).
    let weights = [1000u64, 1, 1, 1, 1, 1, 1, 1];
    let assignment = lpt_schedule(&weights, None, 4);
    let hot_bin = assignment[0];
    let mut loads = [0u64; 4];
    for (region, &bin) in assignment.iter().enumerate() {
        loads[bin as usize] += weights[region];
    }
    assert_eq!(
        loads[hot_bin as usize], 1000,
        "hot region must not share its bin"
    );
    assert_eq!(*loads.iter().max().unwrap(), 1000);
    // All four bins get work: nothing is stranded.
    assert!(loads.iter().all(|&l| l > 0));
}

#[test]
fn execute_join_handles_a_hot_region_end_to_end() {
    // End-to-end companion of the LPT regression: a CSIO scheme over a
    // hot-key input yields one dominant region; the batch oracle must still
    // produce the exact join with more threads than regions in play.
    let k = skewed_keys(4000, 51);
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cond = JoinCondition::Equi;
    let keys: Vec<Key> = k.clone();
    let params = HistogramParams {
        j: 6,
        ..Default::default()
    };
    let scheme = build_csio(&keys, &keys, &cond, &CostModel::band(), &params);
    let cfg = OperatorConfig {
        j: 6,
        threads: 8,
        mode: ExecMode::Batch,
        ..Default::default()
    };
    let map: Vec<u32> = (0..scheme.num_regions() as u32).collect();
    let sh = shuffle(&r1, &r2, &scheme, 2, 9);
    let input_total = sh.network_tuples;
    let stats = execute_join(sh, &cond, &map, &cfg);
    let expect: u64 = {
        let mut m = 0u64;
        let mut counts = std::collections::HashMap::new();
        for &key in &k {
            *counts.entry(key).or_insert(0u64) += 1;
        }
        for (_, c) in counts {
            m += c * c;
        }
        m
    };
    assert_eq!(stats.output_total, expect);
    assert_eq!(stats.per_worker_input.iter().sum::<u64>(), input_total);
}

#[test]
fn adaptive_fallback_reuses_the_morsel_plan_in_pipelined_mode() {
    // Cross-product-like join: every key matches everything → fallback.
    let k = vec![0i64; 1500];
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cond = JoinCondition::Equi;
    let cfg = OperatorConfig {
        j: 4,
        threads: 4,
        mode: ExecMode::Pipelined,
        morsel_tuples: 128,
        ..Default::default()
    };
    let run = run_operator_adaptive(
        &test_rt(),
        &r1,
        &r2,
        &cond,
        &cfg,
        &FallbackPolicy::default(),
    );
    assert!(run.fell_back);
    assert_eq!(run.kind, SchemeKind::Ci);
    assert_eq!(run.join.output_total, 1500 * 1500);
    // The CI engine routed the abandoned plan's morsels exactly once — no
    // tuple was shuffled twice and nothing was re-morselized.
    let expect_morsels = 2 * 1500u64.div_ceil(128);
    assert_eq!(run.join.morsels_routed, expect_morsels);
}

#[test]
fn pipelined_imbalance_matches_batch_for_content_sensitive_schemes() {
    // Per-worker load accounting must agree across modes (deterministic
    // routing ⇒ identical per-region inputs, outputs, and thus weights).
    let k1 = random_keys(5000, 1200, 61);
    let k2 = random_keys(5000, 1200, 62);
    let cond = JoinCondition::Band { beta: 1 };
    let (r1, r2) = (tuples(&k1), tuples(&k2));
    let base = OperatorConfig {
        j: 6,
        threads: 3,
        ..Default::default()
    };
    let rt = test_rt();
    let batch = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Batch,
            ..base.clone()
        },
    );
    let pipe = run_operator(
        &rt,
        SchemeKind::Csio,
        &r1,
        &r2,
        &cond,
        &OperatorConfig {
            mode: ExecMode::Pipelined,
            ..base
        },
    );
    assert_eq!(pipe.join.per_worker_input, batch.join.per_worker_input);
    assert_eq!(pipe.join.per_worker_output, batch.join.per_worker_output);
    assert_eq!(pipe.join.max_weight_milli, batch.join.max_weight_milli);
}
