//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` 0.8 APIs the workspace actually uses are
//! re-implemented here behind the same paths: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng`] with `gen_range` / `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm real `rand` 0.8 uses for `SmallRng` on 64-bit targets — so
//! streams are high quality and deterministic per seed. Integer ranges are
//! sampled with the widening-multiply method (bias < 2⁻⁶⁴ per draw), floats
//! with the standard 53-bit mantissa-fill in `[0, 1)`.
//!
//! Only determinism *within this workspace* is guaranteed; draw-for-draw
//! equality with the real crate is not a goal.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range (integers or `f64`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draw a value from the "standard" distribution of `T`
    /// (full range for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard distribution of a type (mirrors `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that `Rng::gen_range` can sample from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, span)` for `span <= 2^64`, via widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1u128 << 64);
    if span > u64::MAX as u128 {
        // Full 64-bit span: every u64 is a valid draw.
        rng.next_u64() as u128
    } else {
        (rng.next_u64() as u128 * span) >> 64
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * f64::sample(rng);
        // start + span*f can round up to `end` when the range spans few
        // representable values; keep the result in the half-open contract.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * f32::sample(rng);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (va, vb, vc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..32).map(|_| a.gen::<u64>()).collect(),
            (0..32).map(|_| b.gen::<u64>()).collect(),
            (0..32).map(|_| c.gen::<u64>()).collect(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i64..4100);
            assert!((-100..4100).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_a_small_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_standard_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
