//! Concrete generators (mirrors `rand::rngs`).

use super::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm behind real `rand` 0.8's `SmallRng` on
/// 64-bit targets. Fast, 256-bit state, passes BigCrush.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion, per Blackman & Vigna's reference code.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
