//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the criterion APIs the workspace's `benches/` use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], [`criterion_group!`] and
//! [`criterion_main!`] — with a deliberately simple measurement loop: one
//! calibration call, then as many timed iterations as fit in the group's
//! `measurement_time` (capped at 5000 iterations, or `sample_size` if
//! larger), reporting the mean as `ns/iter` on stderr.
//!
//! No statistical analysis, HTML reports, or baseline comparison — just
//! enough to keep `cargo bench` runnable and the bench targets compiling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Upper bound on timed iterations per benchmark (overridable upward by
/// `sample_size`). Fast micro-benchmarks hit this cap before exhausting
/// `measurement_time`, trading statistical depth for bounded runtime.
const ITER_CAP: u64 = 5000;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim measures the routine
/// in isolation regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warmup: Duration::from_millis(100),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run(&id.id, f);
        drop(group);
        self
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            measurement: self.measurement,
            warmup: self.warmup,
            min_iters: self.sample_size as u64,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.to_owned()
        } else {
            format!("{}/{}", self.name, id)
        };
        eprintln!(
            "bench: {label:<48} {:>14.1} ns/iter  ({} iters)",
            bencher.mean_ns, bencher.iters
        );
    }
}

/// Throughput annotation; accepted and ignored by the shim.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    measurement: Duration,
    warmup: Duration,
    /// Lower bound on timed iterations, from the group's `sample_size`.
    min_iters: u64,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`, running as many iterations as fit in the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate with a single run.
        let calib = Instant::now();
        black_box(f());
        let per_iter = calib.elapsed().max(Duration::from_nanos(1));

        let warm_iters = (self.warmup.as_nanos() / per_iter.as_nanos()).clamp(0, 1000) as u64;
        for _ in 0..warm_iters {
            black_box(f());
        }

        let floor = self.min_iters.max(1);
        let iters = ((self.measurement.as_nanos() / per_iter.as_nanos()) as u64)
            .clamp(floor, floor.max(ITER_CAP));
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let cap = self.min_iters.max(ITER_CAP);
        while (total < self.measurement || iters < self.min_iters) && iters < cap {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate the bench binary's `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
