//! The [`any`] entry point (mirrors `proptest::arbitrary`).

use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn sample_any(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn sample_any(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn sample_any(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T` (e.g. `any::<i32>()` draws any `i32`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::sample_any(rng)
    }
}
