//! Test-runner configuration and case-level errors
//! (mirrors `proptest::test_runner`).

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single generated case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of a test's name: the per-test RNG seed, so every property
/// test is deterministic run-to-run but distinct from its neighbours.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
