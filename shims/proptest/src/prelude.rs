//! Glob-import surface (mirrors `proptest::prelude`).

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// The `prop::` module alias (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
