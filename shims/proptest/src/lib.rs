//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of proptest's API this workspace uses, behind the
//! same paths: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`](fn@collection::vec), [`arbitrary::any`],
//! [`strategy::Just`],
//! [`prop_oneof!`], and the [`proptest!`] test macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Semantics: purely random generation (seeded per test from an FNV-1a hash
//! of the test name, so runs are deterministic) with **no shrinking**. On
//! failure the panic message reports the case number; re-running reproduces
//! it exactly.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Internal runtime re-exports for macro expansions; not part of the API.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::{Rng, SeedableRng};
}

/// Uniformly choose one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert a condition inside a [`proptest!`] body (fails the case, does not
/// abort the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n {}",
                    stringify!($left), stringify!($right), __l, __r,
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: `{:?}`",
                    stringify!($left),
                    stringify!($right),
                    __l,
                ),
            ));
        }
    }};
}

/// Reject the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Declare property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` that generates `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rt::SmallRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::test_runner::fnv1a(stringify!($name)),
            );
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(__why),
                    ) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            ::std::panic!(
                                "proptest `{}`: too many rejected cases ({}): {}",
                                stringify!($name), rejects, __why,
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        ::std::panic!(
                            "proptest `{}` failed at case {}: {}",
                            stringify!($name), case, __msg,
                        );
                    }
                }
            }
        }
    )*};
}
