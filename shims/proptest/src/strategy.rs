//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// produces a value directly from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
