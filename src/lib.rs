//! # EWH — Equi-Weight Histograms for Parallel Joins
//!
//! Facade crate for the workspace reproducing *Load Balancing and Skew
//! Resilience for Parallel Joins* (Vitorovic, Elseidy & Koch, ICDE 2016).
//! Re-exports every sub-crate under one roof so examples and downstream users
//! need a single dependency:
//!
//! * [`core`] — join model, cost model, the CI / CSI / CSIO
//!   partitioning schemes and the three-stage equi-weight histogram.
//! * [`tiling`] — BSP, MONOTONICBSP and grid coarsening.
//! * [`sampling`] — Bernoulli, equi-depth, reservoirs and
//!   parallel Stream-Sample.
//! * [`exec`] — the shared-nothing execution engine (morsel-driven
//!   pipeline, batch oracle, local joins, metrics, operator runner, CI
//!   fallback, and the composable query-plan executor with streamed
//!   intermediates).
//! * [`datagen`] — skewed TPC-H-style and synthetic X workload
//!   generators.
//!
//! ## Quickstart
//!
//! ```
//! use ewh::prelude::*;
//!
//! // Two small relations joined by a band condition |a - b| <= 2.
//! let r1: Vec<Tuple> = (0..2000).map(|i| Tuple::new(i % 500, i as u64)).collect();
//! let r2: Vec<Tuple> = (0..2000).map(|i| (i * 7) % 500).map(|k| Tuple::new(k, k as u64)).collect();
//! let cond = JoinCondition::Band { beta: 2 };
//!
//! let cfg = OperatorConfig { j: 4, ..OperatorConfig::default() };
//! // Queries execute as task batches on a shared worker-pool runtime —
//! // one pool serves any number of concurrent queries.
//! let run = run_operator(EngineRuntime::global(), SchemeKind::Csio, &r1, &r2, &cond, &cfg);
//! assert!(run.join.output_total > 0);
//! ```

pub use ewh_core as core;
pub use ewh_datagen as datagen;
pub use ewh_exec as exec;
pub use ewh_sampling as sampling;
pub use ewh_tiling as tiling;

/// Common imports for examples and applications.
pub mod prelude {
    pub use ewh_core::{
        CostModel, HistogramParams, IneqOp, JoinCondition, JoinMatrix, Key, KeyRange, Region,
        SchemeKind, Tuple,
    };
    pub use ewh_datagen::{
        gen_chain_retail, gen_orders, gen_retail, gen_x_relation, ChainParams, Order, OrdersParams,
        RetailParams, ZipfCdf,
    };
    pub use ewh_exec::{
        run_operator, run_operator_adaptive, run_plan, run_plan_materialized, ChainStage,
        EngineRuntime, ExecMode, FallbackPolicy, LinkProfile, OperatorConfig, OperatorRun,
        OutputWork, PlanRun, RemoteExchangeReceiver, RemoteExchangeSender, RuntimeConfig,
        SpillConfig, StageSpec, TransportConfig, TransportKind,
    };
}
