//! Time-distance band join on skewed call logs — the paper's motivating
//! scenario (§I: "notable examples of band-joins are time-distance joins,
//! e.g. in call logs").
//!
//! Two call-detail relations are joined on |t1.timestamp − t2.timestamp| ≤ β
//! to correlate near-simultaneous events. Traffic is bursty: a flash-crowd
//! window holds a large share of the calls, producing join product skew
//! exactly like the paper's X dataset. We compare all three schemes and show
//! the simulated-time ranking, then validate against a reference count.
//!
//! Run with: `cargo run --release --example skewed_band_join`

use ewh::prelude::*;

fn synth_calls(n: usize, burst_at: Key, burst_share: f64, seed: u64) -> Vec<Tuple> {
    // xorshift-style deterministic generator; keys are "seconds of day".
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let day = 86_400i64;
    let burst = (n as f64 * burst_share) as usize;
    (0..n)
        .map(|i| {
            let key = if i < burst {
                burst_at + (next() % 600) as Key // 10-minute flash crowd
            } else {
                (next() % day as u64) as Key
            };
            Tuple::new(key, i as u64)
        })
        .collect()
}

fn main() {
    let n = 150_000;
    let r1 = synth_calls(n, 43_200, 0.05, 0xA);
    let r2 = synth_calls(n, 43_260, 0.05, 0xB);
    let cond = JoinCondition::Band { beta: 10 }; // within 10 seconds

    // Reference output size from the exact join-matrix model.
    let keys = |ts: &[Tuple]| ts.iter().map(|t| t.key).collect::<Vec<Key>>();
    let reference = JoinMatrix::new(keys(&r1), keys(&r2), cond).output_count();
    println!("calls: {n} per side; band = 10s; exact output = {reference}");

    let rt = EngineRuntime::global();
    let cfg = OperatorConfig {
        j: 16,
        ..OperatorConfig::default()
    };
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12}",
        "scheme", "output", "sim_total_s", "network", "max_weight"
    );
    let mut best: Option<(SchemeKind, f64)> = None;
    for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
        let run = run_operator(rt, kind, &r1, &r2, &cond, &cfg);
        assert_eq!(
            run.join.output_total, reference,
            "scheme lost or duplicated tuples"
        );
        println!(
            "{:<6} {:>10} {:>12.4} {:>12} {:>12}",
            run.kind.to_string(),
            run.join.output_total,
            run.total_sim_secs,
            run.join.network_tuples,
            run.join.max_weight_milli / 1000,
        );
        if best.map(|(_, t)| run.total_sim_secs < t).unwrap_or(true) {
            best = Some((run.kind, run.total_sim_secs));
        }
    }
    let (winner, _) = best.unwrap();
    println!("\nfastest scheme under burst skew: {winner}");

    // If the flash crowd were far larger the join would turn high-selectivity
    // (ρoi beyond ~100) and CI would win; the adaptive operator of §VI-E
    // notices that from the exact m learned during sampling and falls back.
    let r1x = synth_calls(n, 43_200, 0.5, 0xC);
    let r2x = synth_calls(n, 43_260, 0.5, 0xD);
    let adaptive = run_operator_adaptive(
        rt,
        &r1x,
        &r2x,
        &JoinCondition::Band { beta: 30 },
        &cfg,
        &FallbackPolicy::default(),
    );
    println!(
        "extreme burst: rho_oi = {:.0}, fell back to {} = {}",
        adaptive.join.output_total as f64 / (2 * n) as f64,
        adaptive.kind,
        adaptive.fell_back
    );
}
