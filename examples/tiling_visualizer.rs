//! ASCII rendition of Figure 1: the join matrix of the paper's 16×18
//! band-join example and the regions each scheme would use.
//!
//! `#` marks output cells (shaded in the paper), `.` empty cells; region ids
//! are printed as letters over the candidate grid of the CSIO scheme.
//!
//! Run with: `cargo run --example tiling_visualizer`

use ewh::core::{build_csio, CostModel, HistogramParams, JoinCondition, JoinMatrix, Key, KeyRange};

fn main() {
    // The key multisets of Fig. 1 (R1 on rows, R2 on columns).
    let r1: Vec<Key> = vec![17, 13, 9, 9, 20, 3, 6, 19, 5, 5, 15, 23, 3, 22, 25, 7];
    let r2: Vec<Key> = vec![19, 15, 11, 10, 2, 3, 3, 9, 22, 5, 5, 17, 26, 9, 25, 3, 2, 7];
    let cond = JoinCondition::Band { beta: 1 };
    let m = JoinMatrix::new(r1.clone(), r2.clone(), cond);

    println!("join matrix for |R1.A - R2.A| <= 1 (rows/cols sorted by key):\n");
    print!("      ");
    for &k in m.r2_keys() {
        print!("{k:>3}");
    }
    println!();
    for (i, &k1) in m.r1_keys().iter().enumerate() {
        print!("{k1:>5} ");
        for j in 0..m.n2() {
            print!("{:>3}", if m.is_one(i, j) { "#" } else { "." });
        }
        println!();
    }
    println!("\noutput tuples: {}", m.output_count());

    // Build the CSIO scheme for 3 machines (as in Fig. 1d) and render the
    // region ownership of every matrix cell.
    let params = HistogramParams {
        j: 3,
        so_override: Some(400),
        ..Default::default()
    };
    let scheme = build_csio(&r1, &r2, &cond, &CostModel::band(), &params);
    println!("\nCSIO regions for J = 3 (letters = owning region, '.' = unassigned):\n");
    print!("      ");
    for &k in m.r2_keys() {
        print!("{k:>3}");
    }
    println!();
    for &k1 in m.r1_keys() {
        print!("{k1:>5} ");
        for &k2 in m.r2_keys() {
            let owner = scheme
                .regions
                .iter()
                .position(|r| r.rows.contains(k1) && r.cols.contains(k2));
            match owner {
                Some(id) => print!("{:>3}", (b'A' + id as u8) as char),
                None => print!("{:>3}", "."),
            }
        }
        println!();
    }
    println!();
    for (id, r) in scheme.regions.iter().enumerate() {
        let fmt = |kr: &KeyRange| {
            let lo = if kr.lo == Key::MIN {
                "-inf".into()
            } else {
                kr.lo.to_string()
            };
            let hi = if kr.hi == Key::MAX {
                "+inf".into()
            } else {
                kr.hi.to_string()
            };
            format!("[{lo}, {hi}]")
        };
        println!(
            "region {}: rows {} x cols {}  est_input={} est_output={}",
            (b'A' + id as u8) as char,
            fmt(&r.rows),
            fmt(&r.cols),
            r.est_input,
            r.est_output
        );
    }
}
