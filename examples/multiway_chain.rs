//! Multi-way joins as a sequence of 2-way operators (§IV-B: "a multi-way
//! join can be efficiently executed using a sequence of our 2-way joins").
//!
//! Three sensor relations are chained with band conditions:
//! `A ⋈ B ON |a−b| ≤ 2` then `(A⋈B) ⋈ C ON |b−c| ≤ 2`. The intermediate
//! result feeds the second operator as an ordinary relation — the paper's
//! "input relations are not necessarily base relations" case, where the
//! scheme is rebuilt per join from fresh statistics.
//!
//! Run with: `cargo run --release --example multiway_chain`

use ewh::prelude::*;
use ewh::sampling::KeyedCounts;

fn relation(n: usize, stride: i64, seed: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::new((i as i64 * stride + seed) % n as i64, i as u64))
        .collect()
}

/// Materializes the join's output keyed by the *right* key (the attribute the
/// next join in the chain uses), as a query plan's pipeline would.
fn materialize_by_right_key(r1: &[Tuple], r2: &[Tuple], cond: &JoinCondition) -> Vec<Tuple> {
    // Sort-merge production mirroring the engine's local join; at this scale
    // a single machine materializes the intermediate.
    let mut left = r1.to_vec();
    let mut right = r2.to_vec();
    left.sort_unstable_by_key(|t| t.key);
    right.sort_unstable_by_key(|t| t.key);
    let mut out = Vec::new();
    let (mut lo, mut hi) = (0usize, 0usize);
    for t1 in &left {
        let jr = cond.joinable_range(t1.key);
        while lo < right.len() && right[lo].key < jr.lo {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < right.len() && right[hi].key <= jr.hi {
            hi += 1;
        }
        for t2 in &right[lo..hi] {
            out.push(Tuple::new(t2.key, t1.payload ^ t2.payload));
        }
    }
    out
}

fn main() {
    let n = 60_000;
    let a = relation(n, 7, 0);
    let b = relation(n, 11, 3);
    let c = relation(n, 13, 5);
    let cond = JoinCondition::Band { beta: 2 };
    let cfg = OperatorConfig {
        j: 8,
        ..OperatorConfig::default()
    };

    // First 2-way join through the parallel operator.
    let run1 = run_operator(SchemeKind::Csio, &a, &b, &cond, &cfg);
    println!(
        "stage 1: A |x| B  -> {} tuples (sim {:.4}s, {} regions)",
        run1.join.output_total, run1.total_sim_secs, run1.num_regions
    );

    // Materialize the intermediate keyed by B's attribute and chain.
    let ab = materialize_by_right_key(&a, &b, &cond);
    assert_eq!(ab.len() as u64, run1.join.output_total);
    let run2 = run_operator(SchemeKind::Csio, &ab, &c, &cond, &cfg);
    println!(
        "stage 2: AB |x| C -> {} tuples (sim {:.4}s, {} regions)",
        run2.join.output_total, run2.total_sim_secs, run2.num_regions
    );

    // Cross-check the chained result against a direct two-level count.
    let c_counts = KeyedCounts::from_keys(c.iter().map(|t| t.key).collect());
    let expect: u64 = ab
        .iter()
        .map(|t| {
            let jr = cond.joinable_range(t.key);
            c_counts.range_count(jr.lo, jr.hi)
        })
        .sum();
    assert_eq!(run2.join.output_total, expect);
    println!("\nchained 3-way output verified: {expect} tuples");
    println!(
        "total simulated time: {:.4}s (stats rebuilt per join, as in §IV-B)",
        run1.total_sim_secs + run2.total_sim_secs
    );
}
