//! Multi-way joins as a *composable query plan* (§IV-B: "a multi-way join
//! can be efficiently executed using a sequence of our 2-way joins").
//!
//! Three sensor relations are chained with band conditions:
//! `A ⋈ B ON |a−b| ≤ 2`, then the intermediate streams into
//! `C ⋈ (A⋈B) ON |c−b| ≤ 2`. Unlike the paper's sequential formulation —
//! and unlike this example before the plan executor existed — the
//! intermediate is never materialized: the first operator's reducers ship
//! probe output through a bounded exchange into the second operator's
//! mappers, and the second operator's CSIO scheme is built from an online
//! reservoir sample of the stream ("input relations are not necessarily
//! base relations", with the statistics collected in flight).
//!
//! Run with: `cargo run --release --example multiway_chain`

use ewh::prelude::*;
use ewh::sampling::KeyedCounts;

fn relation(n: usize, stride: i64, seed: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::new((i as i64 * stride + seed) % n as i64, i as u64))
        .collect()
}

fn main() {
    let n = 60_000;
    let a = relation(n, 7, 0);
    let b = relation(n, 11, 3);
    let c = relation(n, 13, 5);
    let cond = JoinCondition::Band { beta: 2 };
    let cfg = OperatorConfig {
        j: 8,
        ..OperatorConfig::default()
    };

    // The two-hop plan: (A ⋈ B) streamed into (C ⋈ ·). The root stage
    // emits intermediates keyed by its probe side (B's attribute — what
    // the next hop joins on); the chain stage builds on base relation C
    // and probes the stream.
    let first = StageSpec {
        kind: SchemeKind::Csio,
        cond,
    };
    let chain = [ChainStage {
        base: &c,
        spec: StageSpec {
            kind: SchemeKind::Csio,
            cond,
        },
    }];
    let run = run_plan(EngineRuntime::global(), &a, &b, &first, &chain, &cfg);

    for (i, stage) in run.stages.iter().enumerate() {
        println!(
            "stage {i}: {} over {} regions -> {} tuples (stats from {} sampled of {} seen{})",
            stage.kind,
            stage.num_regions,
            stage.join.output_total,
            stage.sample_tuples,
            stage.cutoff_seen,
            if i == 0 {
                " — full base statistics"
            } else {
                ""
            },
        );
    }
    println!(
        "\npipelined plan: {} outputs, peak resident {:.2} MiB, makespan {:.4}s",
        run.output_total,
        run.peak_resident_bytes as f64 / (1024.0 * 1024.0),
        run.wall_secs
    );

    // The classic execution for comparison: materialize A ⋈ B in full,
    // rebuild statistics from scratch with a second pass, then join.
    let mat = run_plan_materialized(&a, &b, &first, &chain, &cfg);
    println!(
        "materialized baseline: {} outputs, modeled peak {:.2} MiB, makespan {:.4}s",
        mat.output_total,
        mat.peak_resident_bytes as f64 / (1024.0 * 1024.0),
        mat.wall_secs
    );
    assert_eq!(run.output_total, mat.output_total);
    assert_eq!(run.checksum, mat.checksum);

    // Cross-check the chained result against a direct two-level count: the
    // intermediate is keyed by B's attribute, so each distinct b key
    // contributes (joinable A tuples) × (its own multiplicity) × (joinable
    // C tuples) — the band condition is symmetric, so joinability can be
    // counted from either side.
    let a_counts = KeyedCounts::from_keys(a.iter().map(|t| t.key).collect());
    let b_counts = KeyedCounts::from_keys(b.iter().map(|t| t.key).collect());
    let c_counts = KeyedCounts::from_keys(c.iter().map(|t| t.key).collect());
    let expect: u64 = b_counts
        .keys()
        .iter()
        .zip(b_counts.counts())
        .map(|(&bk, &mult)| {
            let jr = cond.joinable_range(bk);
            a_counts.range_count(jr.lo, jr.hi) * mult * c_counts.range_count(jr.lo, jr.hi)
        })
        .sum();
    assert_eq!(run.output_total, expect);
    println!("\nchained 3-way output verified: {expect} tuples");
    println!(
        "intermediate ({} tuples) streamed through a {}-tuple exchange — never resident in full",
        run.intermediate_tuples(),
        cfg.exchange_tuples
    );
}
