//! Figure 3 walkthrough: the three histogram stages on a small skewed band
//! join — sample matrix MS, coarsened matrix MC, and the equi-weight
//! histogram MH, with per-stage shapes and weights printed.
//!
//! Run with: `cargo run --release --example histogram_stages`

use ewh::core::histogram::{build_sample_matrix, coarsen_sample_matrix, regionalize};
use ewh::core::{CostModel, HistogramParams, JoinCondition, Key};

fn main() {
    // Skewed input: a hot key segment plus a uniform tail.
    let n = 40_000usize;
    let keys: Vec<Key> = (0..n as i64)
        .map(|i| {
            if i % 4 == 0 {
                5_000 + i % 200
            } else {
                (i * 17) % n as i64
            }
        })
        .collect();
    let cond = JoinCondition::Band { beta: 3 };
    let cost = CostModel::band();
    let params = HistogramParams {
        j: 8,
        ..Default::default()
    };

    println!("== stage 1: sampling -> MS ==");
    let ms = build_sample_matrix(&keys, &keys, &cond, &params);
    println!(
        "  ns            = {} x {} (rule: sqrt(2nJ))",
        ms.n_rows(),
        ms.n_cols()
    );
    println!("  input sample  = {} keys/relation", ms.si);
    println!(
        "  output sample = {} pairs (so = max(1063, 2*nsc), nsc = {})",
        ms.so, ms.nsc
    );
    println!(
        "  exact m       = {} output tuples (from parallel Stream-Sample)",
        ms.m
    );
    println!(
        "  max MS cell weight sigma = {} milli-units",
        ms.max_cell_weight(&cost)
    );
    let w_opt = cost.weight(2 * n as u64, ms.m) / params.j as u64;
    println!(
        "  Lemma 3.1 check: sigma <= wOPT/2 = {} -> {}",
        w_opt / 2,
        ms.max_cell_weight(&cost) <= w_opt / 2
    );

    println!("\n== stage 2: coarsening -> MC (nc = 2J) ==");
    let mc = coarsen_sample_matrix(&ms, &cond, &cost, params.nc(), 4, true);
    println!("  MC            = {} x {}", mc.n_rows(), mc.n_cols());
    let max_cell = (0..mc.n_rows())
        .flat_map(|r| (0..mc.n_cols()).map(move |c| (r, c)))
        .filter(|&(r, c)| mc.grid.is_candidate(r as u32, c as u32))
        .map(|(r, c)| {
            mc.grid.weight(ewh::tiling::Rect::new(
                r as u32, c as u32, r as u32, c as u32,
            ))
        })
        .max()
        .unwrap_or(0);
    println!("  max candidate MC cell weight = {max_cell} milli-units");

    println!("\n== stage 3: regionalization -> MH (binary search + MONOTONICBSP) ==");
    let reg = regionalize(&mc, params.j, false);
    println!("  regions  = {} (J = {})", reg.regions.len(), params.j);
    println!("  delta    = {} milli-units", reg.delta);
    println!("  max region weight (estimated) = {}", reg.est_max_weight);
    println!("\n  per-region estimates:");
    for (i, r) in reg.regions.iter().enumerate() {
        println!(
            "    region {i}: input={:>7} output={:>8} weight={:>9}",
            r.est_input,
            r.est_output,
            r.est_weight(&cost)
        );
    }
    let weights: Vec<u64> = reg.regions.iter().map(|r| r.est_weight(&cost)).collect();
    let max = *weights.iter().max().unwrap();
    let mean = weights.iter().sum::<u64>() / weights.len() as u64;
    println!(
        "\n  equi-weight quality: max/mean = {:.2}",
        max as f64 / mean as f64
    );
}
