//! Heterogeneous clusters (Appendix A5): "we assign work to machines
//! proportionally to their capacity... we set the number of regions in the
//! histogram algorithm higher than the number of machines."
//!
//! A 4-worker cluster where one worker is 3× faster: building 16 regions and
//! LPT-assigning them by estimated weight / capacity shortens the simulated
//! makespan versus the naive one-region-per-machine layout.
//!
//! Run with: `cargo run --release --example heterogeneous_cluster`

use ewh::prelude::*;

fn main() {
    let n = 120_000;
    let r1: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new((i * 7 % n) as Key, i as u64))
        .collect();
    let r2: Vec<Tuple> = (0..n)
        .map(|i| Tuple::new((i * 11 % n) as Key, i as u64))
        .collect();
    let cond = JoinCondition::Band { beta: 4 };
    let capacities = vec![3.0, 1.0, 1.0, 1.0];

    // Naive: one region per machine, capacities ignored.
    let naive = OperatorConfig {
        j: 4,
        ..OperatorConfig::default()
    };
    let rt = EngineRuntime::global();
    let naive_run = run_operator(rt, SchemeKind::Csio, &r1, &r2, &cond, &naive);

    // Capacity-aware: 16 regions LPT-packed onto the 4 workers.
    let aware = OperatorConfig {
        j: 4,
        j_regions: Some(16),
        capacities: Some(capacities.clone()),
        ..OperatorConfig::default()
    };
    let aware_run = run_operator(rt, SchemeKind::Csio, &r1, &r2, &cond, &aware);
    assert_eq!(naive_run.join.output_total, aware_run.join.output_total);

    // Makespan = max over workers of weight / capacity.
    let makespan = |run: &OperatorRun| {
        run.join
            .per_worker_input
            .iter()
            .zip(&run.join.per_worker_output)
            .zip(&capacities)
            .map(|((&i, &o), &c)| naive.cost.weight(i, o) as f64 / c)
            .fold(0.0f64, f64::max)
    };
    println!("cluster: capacities {capacities:?} (worker 0 is 3x faster)");
    println!("per-worker (input, output):");
    for (label, run) in [
        ("naive 4 regions", &naive_run),
        ("A5: 16 regions + LPT", &aware_run),
    ] {
        let loads: Vec<(u64, u64)> = run
            .join
            .per_worker_input
            .iter()
            .zip(&run.join.per_worker_output)
            .map(|(&a, &b)| (a, b))
            .collect();
        println!("  {label:<22} {loads:?}  makespan = {:.0}", makespan(run));
    }
    let gain = makespan(&naive_run) / makespan(&aware_run);
    println!("\ncapacity-aware speedup: {gain:.2}x");
    assert!(gain > 1.1, "capacity-aware assignment should beat naive");
}
