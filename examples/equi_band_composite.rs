//! The BE_OCD-style composite join: equality on one attribute plus a band on
//! another (Appendix B), realized through the encoded `EquiBand` condition.
//!
//! `orders ⋈ orders ON o1.custkey = o2.custkey AND |o1.sp − o2.sp| ≤ 2`,
//! with skewed customers — the join-product-skew stress test where
//! input-only schemes collapse.
//!
//! Run with: `cargo run --release --example equi_band_composite`

use ewh::prelude::*;

const SHIFT: i64 = 16;

fn main() {
    // Orders with Zipf-skewed custkeys (z = 0.8 to make the skew visible at
    // this scale) and uniform ship priorities.
    let params = OrdersParams {
        n: 120_000,
        z: 0.8,
        customers_div: 200,
        ..Default::default()
    };
    let orders = gen_orders(&params);
    let encode = |o: &Order| {
        Tuple::new(
            JoinCondition::encode_composite(o.custkey, o.ship_priority, SHIFT),
            o.orderkey as u64,
        )
    };
    let r1: Vec<Tuple> = orders
        .iter()
        .filter(|o| o.order_priority <= 2)
        .map(encode)
        .collect();
    let r2: Vec<Tuple> = orders
        .iter()
        .filter(|o| o.order_priority >= 4)
        .map(encode)
        .collect();
    let cond = JoinCondition::EquiBand {
        shift: SHIFT,
        beta: 2,
    };

    let keys = |ts: &[Tuple]| ts.iter().map(|t| t.key).collect::<Vec<Key>>();
    let m = JoinMatrix::new(keys(&r1), keys(&r2), cond).output_count();
    let rho = m as f64 / (r1.len() + r2.len()) as f64;
    println!(
        "filtered inputs: {} x {}; output = {m} (rho_oi = {rho:.1})",
        r1.len(),
        r2.len()
    );

    let cfg = OperatorConfig {
        j: 16,
        cost: CostModel::equi_band(),
        ..OperatorConfig::default()
    };
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "scheme", "sim_total_s", "max_output", "imbalance"
    );
    let mut csio_time = 0.0;
    let mut csi_time = 0.0;
    for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
        let run = run_operator(EngineRuntime::global(), kind, &r1, &r2, &cond, &cfg);
        assert_eq!(run.join.output_total, m);
        println!(
            "{:<6} {:>12.4} {:>12} {:>12.2}",
            run.kind.to_string(),
            run.total_sim_secs,
            run.join.max_output(),
            run.join.imbalance(&cfg.cost),
        );
        match kind {
            SchemeKind::Csi => csi_time = run.total_sim_secs,
            SchemeKind::Csio => csio_time = run.total_sim_secs,
            _ => {}
        }
    }
    println!(
        "\nCSIO speedup over CSI under join product skew: {:.1}x",
        csi_time / csio_time
    );
}
