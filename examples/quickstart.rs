//! Quickstart: build the equi-weight histogram scheme for a band join and
//! execute it on a simulated shared-nothing cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use ewh::prelude::*;

fn main() {
    // A band join |R1.key - R2.key| <= 5 over two skewed relations:
    // 20% of the tuples crowd into 2% of the key space.
    let n = 200_000;
    let hot = n / 5;
    let r1: Vec<Tuple> = (0..n)
        .map(|i| {
            let key = if i < hot {
                (i % (n / 50)) as Key
            } else {
                (i * 7 % n) as Key
            };
            Tuple::new(key, i as u64)
        })
        .collect();
    let r2: Vec<Tuple> = (0..n)
        .map(|i| {
            let key = if i < hot {
                (i % (n / 50)) as Key
            } else {
                (i * 13 % n) as Key
            };
            Tuple::new(key, i as u64)
        })
        .collect();
    let cond = JoinCondition::Band { beta: 5 };

    // One shared worker pool serves every query in the process; queries
    // submit task batches to it instead of spawning their own threads.
    let rt = EngineRuntime::global();
    let cfg = OperatorConfig {
        j: 16,
        ..OperatorConfig::default()
    };
    println!(
        "join: |R1.key - R2.key| <= 5, n = {n} per relation, J = {}",
        cfg.j
    );
    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "scheme", "regions", "output", "max-input", "max-output", "imbalance"
    );
    for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
        let run = run_operator(rt, kind, &r1, &r2, &cond, &cfg);
        println!(
            "{:<6} {:>10} {:>12} {:>10} {:>12} {:>10.2}",
            run.kind.to_string(),
            run.num_regions,
            run.join.output_total,
            run.join.max_input(),
            run.join.max_output(),
            run.join.imbalance(&cfg.cost),
        );
    }
    println!();
    println!("CSIO balances total work (input + output) per machine; CI pays input");
    println!("replication, CSI ignores the output skew of the hot key range.");
}
