//! Property-based tests of the tiling substrate: random staircase grids,
//! random weights — partitions must always be valid, MONOTONICBSP must match
//! the dense baseline, and the regionalization objective must be monotone in
//! the number of machines.

use ewh::tiling::{bsp, monotonic_bsp, partition_max_weight, validate_partition, Grid, TilingAlgo};
use proptest::prelude::*;

/// A random monotone staircase grid: per-row candidate intervals with
/// non-decreasing endpoints, random input weights, random output weights on
/// candidate cells.
fn staircase_grid() -> impl Strategy<Value = Grid> {
    (2usize..10).prop_flat_map(|n| {
        let steps = prop::collection::vec((0u32..3, 0u32..3), n);
        let row_w = prop::collection::vec(1u64..20, n);
        let col_w = prop::collection::vec(1u64..20, n);
        let out_seed = prop::collection::vec(0u64..50, n * n);
        (steps, row_w, col_w, out_seed).prop_map(move |(steps, row_w, col_w, out_seed)| {
            // Build non-decreasing intervals clamped to the grid.
            let mut lo = 0u32;
            let mut hi = 0u32;
            let mut cand = vec![false; n * n];
            let mut out = vec![0u64; n * n];
            for (i, &(dlo, dhi)) in steps.iter().enumerate() {
                lo = (lo + dlo).min(n as u32 - 1);
                hi = (hi.max(lo) + dhi).min(n as u32 - 1);
                for j in lo..=hi {
                    cand[i * n + j as usize] = true;
                    out[i * n + j as usize] = out_seed[i * n + j as usize];
                }
            }
            Grid::new(&row_w, &col_w, &out, &cand)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn monotonic_bsp_partitions_are_always_valid(grid in staircase_grid(), delta_frac in 1u64..8) {
        let total = grid.weight(grid.full());
        let delta = (total / delta_frac).max(1);
        if let Some(regions) = monotonic_bsp(&grid, delta) {
            prop_assert!(validate_partition(&grid, &regions, delta).is_ok());
        } else {
            // Infeasible only when a candidate cell exceeds delta.
            prop_assert!(grid.max_candidate_cell_weight() > delta);
        }
    }

    #[test]
    fn monotonic_matches_dense_baseline(grid in staircase_grid(), delta_frac in 1u64..8) {
        let total = grid.weight(grid.full());
        let delta = (total / delta_frac).max(1);
        let a = bsp(&grid, delta).map(|r| r.len());
        let b = monotonic_bsp(&grid, delta).map(|r| r.len());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn max_weight_is_monotone_in_j(grid in staircase_grid()) {
        let mut prev = u64::MAX;
        for j in [1usize, 2, 4, 8] {
            let p = partition_max_weight(&grid, j, TilingAlgo::MonotonicBsp);
            prop_assert!(p.regions.len() <= j);
            prop_assert!(p.max_weight <= prev, "j={}: {} > {}", j, p.max_weight, prev);
            prop_assert!(validate_partition(&grid, &p.regions, p.delta).is_ok());
            prev = p.max_weight;
        }
    }

    #[test]
    fn delta_from_binary_search_is_tight(grid in staircase_grid(), j in 1usize..6) {
        // No smaller delta may admit a partition within j regions.
        let p = partition_max_weight(&grid, j, TilingAlgo::MonotonicBsp);
        if p.delta > grid.max_candidate_cell_weight() && p.delta > 0 {
            let smaller = monotonic_bsp(&grid, p.delta - 1);
            prop_assert!(
                smaller.map(|r| r.len() > j).unwrap_or(true),
                "delta {} not minimal",
                p.delta
            );
        }
    }
}
