//! Integration tests of the three-stage histogram pipeline: the paper's
//! lemmas and accuracy claims at realistic (scaled) sizes.

use ewh::core::histogram::{build_sample_matrix, coarsen_sample_matrix, regionalize};
use ewh::core::{CostModel, HistogramParams, JoinCondition, Key, SchemeKind, Tuple};
use ewh::exec::{run_operator, EngineRuntime, OperatorConfig};
use ewh::tiling::{validate_partition, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One pool for the whole test binary (matching the runtime's "build one
/// per process" model); 4 workers regardless of host, mirroring the
/// thread teams the pre-runtime engine spawned.
fn test_rt() -> &'static EngineRuntime {
    static RT: std::sync::OnceLock<EngineRuntime> = std::sync::OnceLock::new();
    RT.get_or_init(|| EngineRuntime::new(4))
}

fn skewed_keys(n: usize, seed: u64) -> Vec<Key> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                rng.gen_range(0..n as i64 / 40) // hot head
            } else {
                rng.gen_range(0..n as i64)
            }
        })
        .collect()
}

#[test]
fn lemma_3_1_holds_across_j_and_conditions() {
    let n = 30_000;
    let k1 = skewed_keys(n, 1);
    let k2 = skewed_keys(n, 2);
    let cost = CostModel::band();
    for cond in [
        JoinCondition::Band { beta: 2 },
        JoinCondition::Band { beta: 8 },
    ] {
        for j in [4usize, 8, 16] {
            let params = HistogramParams {
                j,
                ..Default::default()
            };
            let ms = build_sample_matrix(&k1, &k2, &cond, &params);
            if ms.m < n as u64 {
                continue; // lemma premise m >= n
            }
            let sigma = ms.max_cell_weight(&cost);
            let w_opt = cost.weight(2 * n as u64, ms.m) / j as u64;
            assert!(
                sigma <= w_opt / 2 + w_opt / 10,
                "{cond:?} j={j}: sigma {sigma} vs wOPT/2 {}",
                w_opt / 2
            );
        }
    }
}

#[test]
fn regionalization_partition_is_valid_on_the_coarse_grid() {
    let k1 = skewed_keys(20_000, 3);
    let k2 = skewed_keys(20_000, 4);
    let cond = JoinCondition::Band { beta: 3 };
    let cost = CostModel::band();
    for j in [4usize, 8] {
        let params = HistogramParams {
            j,
            ..Default::default()
        };
        let ms = build_sample_matrix(&k1, &k2, &cond, &params);
        let mc = coarsen_sample_matrix(&ms, &cond, &cost, 2 * j, 4, true);
        let reg = regionalize(&mc, j, false);
        let rects: Vec<Rect> = reg
            .rects
            .iter()
            .map(|&(r0, r1, c0, c1)| Rect::new(r0 as u32, c0 as u32, r1 as u32, c1 as u32))
            .collect();
        validate_partition(&mc.grid, &rects, reg.delta)
            .unwrap_or_else(|e| panic!("j={j}: invalid partition: {e}"));
        assert!(rects.len() <= j);
    }
}

#[test]
fn estimate_tracks_realized_weight_within_15_percent() {
    // Fig 4h's accuracy claim (paper: within 6%; we allow sampling slack at
    // our much smaller scale).
    let k1 = skewed_keys(40_000, 5);
    let k2 = skewed_keys(40_000, 6);
    let cond = JoinCondition::Band { beta: 2 };
    let tup = |ks: &[Key]| -> Vec<Tuple> {
        ks.iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u64))
            .collect()
    };
    let cfg = OperatorConfig {
        j: 8,
        threads: 2,
        ..Default::default()
    };
    let run = run_operator(
        test_rt(),
        SchemeKind::Csio,
        &tup(&k1),
        &tup(&k2),
        &cond,
        &cfg,
    );
    let est = run.build.est_max_weight as f64;
    let real = run.join.max_weight_milli as f64;
    let err = (est - real).abs() / real;
    assert!(
        err < 0.15,
        "estimate off by {:.1}% (est {est}, real {real})",
        err * 100.0
    );
}

#[test]
fn csio_dominates_both_baselines_under_mixed_skew() {
    // The headline claim: on a cost-balanced skewed join CSIO's realized max
    // weight beats both CI (input replication) and CSI (JPS).
    let n = 40_000;
    let k1 = skewed_keys(n, 7);
    let k2 = skewed_keys(n, 8);
    let cond = JoinCondition::Band { beta: 4 };
    let tup = |ks: &[Key]| -> Vec<Tuple> {
        ks.iter()
            .enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u64))
            .collect()
    };
    let cfg = OperatorConfig {
        j: 16,
        threads: 2,
        ..Default::default()
    };
    let (r1, r2) = (tup(&k1), tup(&k2));
    let ci = run_operator(test_rt(), SchemeKind::Ci, &r1, &r2, &cond, &cfg);
    let csi = run_operator(test_rt(), SchemeKind::Csi, &r1, &r2, &cond, &cfg);
    let csio = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &cfg);
    assert!(
        csio.join.max_weight_milli < ci.join.max_weight_milli,
        "CSIO {} !< CI {}",
        csio.join.max_weight_milli,
        ci.join.max_weight_milli
    );
    assert!(
        csio.join.max_weight_milli < csi.join.max_weight_milli,
        "CSIO {} !< CSI {}",
        csio.join.max_weight_milli,
        csi.join.max_weight_milli
    );
}

#[test]
fn nc_2j_is_at_least_as_good_as_nc_j() {
    // §III-D: nc = 2J lessens the grid-partitioning penalty vs nc = J.
    let k1 = skewed_keys(25_000, 9);
    let k2 = skewed_keys(25_000, 10);
    let cond = JoinCondition::Band { beta: 3 };
    let cost = CostModel::band();
    let j = 8;
    let est_for = |factor: usize| {
        let params = HistogramParams {
            j,
            nc_factor: factor,
            ..Default::default()
        };
        let ms = build_sample_matrix(&k1, &k2, &cond, &params);
        let mc = coarsen_sample_matrix(&ms, &cond, &cost, params.nc(), 4, true);
        regionalize(&mc, j, false).est_max_weight
    };
    let w1 = est_for(1);
    let w2 = est_for(2);
    // Allow a small tolerance: the stages are approximate, but 2J should
    // never be substantially worse.
    assert!(
        w2 as f64 <= 1.10 * w1 as f64,
        "nc=2J ({w2}) much worse than nc=J ({w1})"
    );
}

#[test]
fn baseline_bsp_and_monotonic_agree_end_to_end() {
    let k1 = skewed_keys(8_000, 11);
    let k2 = skewed_keys(8_000, 12);
    let cond = JoinCondition::Band { beta: 2 };
    let cost = CostModel::band();
    // Small j so the dense baseline (O(nc^4) space) stays cheap.
    let j = 3;
    let params = HistogramParams {
        j,
        ..Default::default()
    };
    let ms = build_sample_matrix(&k1, &k2, &cond, &params);
    let mc = coarsen_sample_matrix(&ms, &cond, &cost, 2 * j, 4, true);
    let mono = regionalize(&mc, j, false);
    let dense = regionalize(&mc, j, true);
    assert_eq!(mono.delta, dense.delta, "hierarchical optima must agree");
}

#[test]
fn rho_b_optimization_shrinks_ns_without_losing_correctness() {
    // Appendix A5: for m >> n, ns can shrink by sqrt(rho_B).
    let n = 20_000usize;
    let mut rng = SmallRng::seed_from_u64(13);
    // Dense key collisions so m ≈ 20n.
    let k1: Vec<Key> = (0..n).map(|_| rng.gen_range(0..n as i64 / 20)).collect();
    let k2: Vec<Key> = (0..n).map(|_| rng.gen_range(0..n as i64 / 20)).collect();
    let cond = JoinCondition::Equi;
    let plain = HistogramParams {
        j: 8,
        ..Default::default()
    };
    let opt = HistogramParams {
        j: 8,
        rho_b_opt: true,
        ..Default::default()
    };
    let ms_plain = build_sample_matrix(&k1, &k2, &cond, &plain);
    let ms_opt = build_sample_matrix(&k1, &k2, &cond, &opt);
    assert_eq!(ms_plain.m, ms_opt.m, "m is exact either way");
    if ms_plain.m > 2 * n as u64 {
        assert!(
            ms_opt.n_rows() < ms_plain.n_rows(),
            "rho_B opt should shrink ns ({} !< {})",
            ms_opt.n_rows(),
            ms_plain.n_rows()
        );
    }
}
