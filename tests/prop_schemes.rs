//! Property-based end-to-end tests: for arbitrary relations and conditions,
//! every scheme computes exactly the reference join.

use ewh::core::{IneqOp, JoinCondition, Key, SchemeKind, Tuple};
use ewh::exec::{run_operator, EngineRuntime, OperatorConfig, OutputWork};
use proptest::prelude::*;

/// One pool for the whole test binary (matching the runtime's "build one
/// per process" model); 4 workers regardless of host, mirroring the
/// thread teams the pre-runtime engine spawned.
fn test_rt() -> &'static EngineRuntime {
    static RT: std::sync::OnceLock<EngineRuntime> = std::sync::OnceLock::new();
    RT.get_or_init(|| EngineRuntime::new(4))
}

fn condition_strategy() -> impl Strategy<Value = JoinCondition> {
    prop_oneof![
        Just(JoinCondition::Equi),
        (0i64..6).prop_map(|beta| JoinCondition::Band { beta }),
        prop_oneof![
            Just(IneqOp::Lt),
            Just(IneqOp::Le),
            Just(IneqOp::Gt),
            Just(IneqOp::Ge)
        ]
        .prop_map(JoinCondition::Inequality),
        (2i64..8).prop_flat_map(|shift_log| {
            let shift = 1 << shift_log;
            (0..shift).prop_map(move |beta| JoinCondition::EquiBand { shift, beta })
        }),
    ]
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0i64..120, 0..max_len)
}

fn reference(k1: &[Key], k2: &[Key], cond: &JoinCondition) -> u64 {
    let mut m = 0;
    for &a in k1 {
        for &b in k2 {
            if cond.matches(a, b) {
                m += 1;
            }
        }
    }
    m
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn schemes_equal_nested_loop(
        k1 in keys_strategy(200),
        k2 in keys_strategy(200),
        cond in condition_strategy(),
        j in 1usize..7,
        seed in 0u64..1000,
    ) {
        let expect = reference(&k1, &k2, &cond);
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let cfg = OperatorConfig {
            j,
            threads: 2,
            seed,
            output_work: OutputWork::Count,
            ..Default::default()
        };
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
            let run = run_operator(test_rt(), kind, &r1, &r2, &cond, &cfg);
            prop_assert_eq!(run.join.output_total, expect, "{} {:?}", kind, cond);
        }
    }

    #[test]
    fn csio_matching_pairs_meet_exactly_once(
        k1 in keys_strategy(150),
        k2 in keys_strategy(150),
        beta in 0i64..5,
        j in 1usize..6,
    ) {
        prop_assume!(!k1.is_empty() && !k2.is_empty());
        let cond = JoinCondition::Band { beta };
        let scheme = ewh::core::build_csio(
            &k1,
            &k2,
            &cond,
            &ewh::core::CostModel::band(),
            &ewh::core::HistogramParams { j, ..Default::default() },
        );
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        use rand::SeedableRng;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &x in k1.iter().take(40) {
            for &y in k2.iter().take(40) {
                a.clear();
                b.clear();
                scheme.router.route_r1(x, &mut rng, &mut a);
                scheme.router.route_r2(y, &mut rng, &mut b);
                let meets = a.iter().filter(|r| b.contains(r)).count();
                if cond.matches(x, y) {
                    prop_assert_eq!(meets, 1, "pair ({}, {})", x, y);
                } else {
                    prop_assert!(meets <= 1, "regions overlap at ({}, {})", x, y);
                }
            }
        }
    }

    #[test]
    fn joinable_range_is_exact_and_monotone(
        cond in condition_strategy(),
        keys in prop::collection::vec(0i64..300, 1..60),
    ) {
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut prev: Option<ewh::core::KeyRange> = None;
        for &a in &sorted {
            let jr = cond.joinable_range(a);
            // Exactness against matches() over a window around a.
            for b in (a - 20).max(0)..a + 20 {
                prop_assert_eq!(cond.matches(a, b), jr.contains(b), "a={} b={}", a, b);
            }
            if let Some(p) = prev {
                prop_assert!(jr.lo >= p.lo && jr.hi >= p.hi, "staircase broken at {}", a);
            }
            prev = Some(jr);
        }
    }
}
