//! Property-based tests of the sampling substrate: Stream-Sample exactness,
//! equi-depth totality, keyed-count range queries.

use ewh::sampling::{parallel_stream_sample, EquiDepthHistogram, Key, KeyedCounts};
use proptest::prelude::*;

fn brute_m(r1: &[Key], r2: &[Key], beta: i64) -> u64 {
    let mut m = 0;
    for &a in r1 {
        for &b in r2 {
            if (a - b).abs() <= beta {
                m += 1;
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn stream_sample_m_is_exact(
        r1 in prop::collection::vec(-100i64..100, 0..150),
        r2 in prop::collection::vec(-100i64..100, 0..150),
        beta in 0i64..6,
        threads in 1usize..5,
    ) {
        let s = parallel_stream_sample(&r1, &r2, |k| (k - beta, k + beta), 64, threads, 7);
        prop_assert_eq!(s.m, brute_m(&r1, &r2, beta));
        // Every sampled pair satisfies the condition.
        for &(a, b) in &s.pairs {
            prop_assert!((a - b).abs() <= beta);
        }
        if s.m > 0 {
            prop_assert_eq!(s.pairs.len(), 64);
        } else {
            prop_assert!(s.pairs.is_empty());
        }
    }

    #[test]
    fn equi_depth_buckets_partition_all_keys(
        sample in prop::collection::vec(any::<i32>().prop_map(|x| x as Key), 0..400),
        buckets in 1usize..40,
    ) {
        let mut s = sample.clone();
        let h = EquiDepthHistogram::from_sample(&mut s, buckets);
        prop_assert!(h.num_buckets() >= 1 && h.num_buckets() <= buckets.max(1));
        for &k in sample.iter().chain([Key::MIN, Key::MAX, 0].iter()) {
            let b = h.bucket_of(k);
            prop_assert!(b < h.num_buckets());
            let (lo, hi) = h.bucket_range(b);
            prop_assert!(lo <= k && k <= hi, "key {} not in bucket [{}, {}]", k, lo, hi);
        }
        // Ranges tile the key space in order.
        let mut expect_lo = Key::MIN;
        for i in 0..h.num_buckets() {
            let (lo, hi) = h.bucket_range(i);
            prop_assert_eq!(lo, expect_lo);
            if i + 1 < h.num_buckets() {
                expect_lo = hi + 1;
            } else {
                prop_assert_eq!(hi, Key::MAX);
            }
        }
    }

    #[test]
    fn keyed_counts_range_queries_match_filter(
        keys in prop::collection::vec(-50i64..50, 0..200),
        lo in -60i64..60,
        span in 0i64..40,
    ) {
        let kc = KeyedCounts::from_keys(keys.clone());
        let hi = lo + span;
        let expect = keys.iter().filter(|&&k| lo <= k && k <= hi).count() as u64;
        prop_assert_eq!(kc.range_count(lo, hi), expect);
        prop_assert_eq!(kc.total(), keys.len() as u64);
        // pick_in_range enumerates exactly the tuples in the range, in key order.
        let picks: Vec<Key> = (0..expect).map(|u| kc.pick_in_range(lo, hi, u)).collect();
        let mut sorted: Vec<Key> = keys.iter().copied().filter(|&k| lo <= k && k <= hi).collect();
        sorted.sort_unstable();
        prop_assert_eq!(picks, sorted);
    }
}
