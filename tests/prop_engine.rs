//! Property-based equivalence of the two execution modes: for arbitrary
//! relations, every scheme kind, and Equi/Band conditions, the morsel-driven
//! pipelined engine must produce exactly the batch oracle's `output_total`
//! and XOR `checksum` — the batch path materializes the full shuffle and is
//! trivially correct, so agreement here certifies the pipeline's routing,
//! seal protocol, and chunked probe sweeps end to end.

use ewh::core::{JoinCondition, Key, SchemeKind, Tuple};
use ewh::exec::{run_operator, EngineRuntime, ExecMode, OperatorConfig};
use proptest::prelude::*;

/// One pool for the whole test binary (matching the runtime's "build one
/// per process" model); 4 workers regardless of host, mirroring the
/// thread teams the pre-runtime engine spawned.
fn test_rt() -> &'static EngineRuntime {
    static RT: std::sync::OnceLock<EngineRuntime> = std::sync::OnceLock::new();
    RT.get_or_init(|| EngineRuntime::new(4))
}

fn condition_strategy() -> impl Strategy<Value = JoinCondition> {
    // Equi and Band only: the Hash scheme supports nothing else.
    prop_oneof![
        Just(JoinCondition::Equi),
        (0i64..5).prop_map(|beta| JoinCondition::Band { beta }),
    ]
}

fn keys_strategy(max_len: usize) -> impl Strategy<Value = Vec<Key>> {
    prop::collection::vec(0i64..100, 0..max_len)
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn pipelined_engine_equals_batch_oracle(
        k1 in keys_strategy(250),
        k2 in keys_strategy(250),
        cond in condition_strategy(),
        j in 1usize..7,
        seed in 0u64..1000,
        morsel_tuples in 1usize..300,
    ) {
        let (r1, r2) = (tuples(&k1), tuples(&k2));
        let base = OperatorConfig {
            j,
            threads: 3,
            seed,
            morsel_tuples,
            ..Default::default()
        };
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio, SchemeKind::Hash] {
            let batch = run_operator(test_rt(),
                kind,
                &r1,
                &r2,
                &cond,
                &OperatorConfig { mode: ExecMode::Batch, ..base.clone() },
            );
            let pipelined = run_operator(test_rt(),
                kind,
                &r1,
                &r2,
                &cond,
                &OperatorConfig { mode: ExecMode::Pipelined, ..base.clone() },
            );
            prop_assert_eq!(
                pipelined.join.output_total,
                batch.join.output_total,
                "{} {:?} morsel={}",
                kind,
                cond,
                morsel_tuples
            );
            prop_assert_eq!(
                pipelined.join.checksum,
                batch.join.checksum,
                "{} {:?} checksum",
                kind,
                cond
            );
            // Deterministic routers move identical volume in both modes.
            prop_assert_eq!(pipelined.join.network_tuples, batch.join.network_tuples);
        }
    }
}
