//! End-to-end correctness: every scheme must produce exactly the reference
//! join output (count and checksum) for every supported condition under a
//! variety of skew patterns.

use ewh::core::{IneqOp, JoinCondition, JoinMatrix, Key, SchemeKind, Tuple};
use ewh::exec::{run_operator, EngineRuntime, OperatorConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One pool for the whole test binary (matching the runtime's "build one
/// per process" model); 4 workers regardless of host, mirroring the
/// thread teams the pre-runtime engine spawned.
fn test_rt() -> &'static EngineRuntime {
    static RT: std::sync::OnceLock<EngineRuntime> = std::sync::OnceLock::new();
    RT.get_or_init(|| EngineRuntime::new(4))
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

/// Key generators exercising the skew taxonomy of the paper: none (uniform),
/// redistribution skew (heavy hitters), and the segmented JPS pattern.
fn patterns(n: usize, seed: u64) -> Vec<(&'static str, Vec<Key>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let uniform: Vec<Key> = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
    let mut heavy = uniform.clone();
    for h in heavy.iter_mut().take(n / 3) {
        *h = 777; // one heavy hitter (redistribution skew)
    }
    let mut segmented: Vec<Key> = (0..n / 5)
        .map(|_| rng.gen_range(0..n as i64 / 30))
        .collect();
    segmented.extend((0..4 * n / 5).map(|_| rng.gen_range(8 * n as i64..16 * n as i64)));
    vec![
        ("uniform", uniform),
        ("heavy_hitter", heavy),
        ("segmented", segmented),
    ]
}

fn conditions() -> Vec<JoinCondition> {
    vec![
        JoinCondition::Equi,
        JoinCondition::Band { beta: 0 },
        JoinCondition::Band { beta: 3 },
        JoinCondition::Inequality(IneqOp::Lt),
        JoinCondition::Inequality(IneqOp::Ge),
        JoinCondition::EquiBand { shift: 32, beta: 3 },
    ]
}

#[test]
fn all_schemes_match_reference_on_all_conditions_and_skews() {
    let n = 2500;
    for (pname, keys1) in patterns(n, 1) {
        for (qname, keys2) in patterns(n, 2) {
            for cond in conditions() {
                // EquiBand needs non-negative keys; patterns are.
                let reference = JoinMatrix::new(keys1.clone(), keys2.clone(), cond).output_count();
                let (r1, r2) = (tuples(&keys1), tuples(&keys2));
                let cfg = OperatorConfig {
                    j: 6,
                    threads: 2,
                    ..Default::default()
                };
                let mut checksums = Vec::new();
                for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
                    let run = run_operator(test_rt(), kind, &r1, &r2, &cond, &cfg);
                    assert_eq!(
                        run.join.output_total, reference,
                        "{kind} {cond:?} on {pname}x{qname}"
                    );
                    checksums.push(run.join.checksum);
                }
                assert!(
                    checksums.windows(2).all(|w| w[0] == w[1]),
                    "checksum mismatch for {cond:?} on {pname}x{qname}"
                );
            }
        }
    }
}

#[test]
fn empty_and_degenerate_relations() {
    let cfg = OperatorConfig {
        j: 4,
        threads: 2,
        ..Default::default()
    };
    let cond = JoinCondition::Band { beta: 2 };
    let some = tuples(&(0..100).collect::<Vec<Key>>());

    for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
        // Empty x non-empty.
        let run = run_operator(test_rt(), kind, &[], &some, &cond, &cfg);
        assert_eq!(run.join.output_total, 0, "{kind} empty left");
        let run = run_operator(test_rt(), kind, &some, &[], &cond, &cfg);
        assert_eq!(run.join.output_total, 0, "{kind} empty right");
        // Single tuples.
        let one = tuples(&[5]);
        let run = run_operator(test_rt(), kind, &one, &one, &cond, &cfg);
        assert_eq!(run.join.output_total, 1, "{kind} singleton");
    }
}

#[test]
fn duplicate_only_relations() {
    // All keys identical: the equi-join degenerates to a full cross product.
    let n = 400u64;
    let keys = vec![42i64; n as usize];
    let (r1, r2) = (tuples(&keys), tuples(&keys));
    let cfg = OperatorConfig {
        j: 4,
        threads: 2,
        ..Default::default()
    };
    for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
        let run = run_operator(test_rt(), kind, &r1, &r2, &JoinCondition::Equi, &cfg);
        assert_eq!(run.join.output_total, n * n, "{kind}");
    }
}

#[test]
fn negative_keys_work_for_non_composite_conditions() {
    let mut rng = SmallRng::seed_from_u64(9);
    let k1: Vec<Key> = (0..1500).map(|_| rng.gen_range(-2000..2000)).collect();
    let k2: Vec<Key> = (0..1500).map(|_| rng.gen_range(-2000..2000)).collect();
    for cond in [
        JoinCondition::Band { beta: 4 },
        JoinCondition::Equi,
        JoinCondition::Inequality(IneqOp::Le),
    ] {
        let reference = JoinMatrix::new(k1.clone(), k2.clone(), cond).output_count();
        let cfg = OperatorConfig {
            j: 5,
            threads: 2,
            ..Default::default()
        };
        for kind in [SchemeKind::Ci, SchemeKind::Csi, SchemeKind::Csio] {
            let run = run_operator(test_rt(), kind, &tuples(&k1), &tuples(&k2), &cond, &cfg);
            assert_eq!(run.join.output_total, reference, "{kind} {cond:?}");
        }
    }
}

#[test]
fn results_are_deterministic_per_seed() {
    let mut rng = SmallRng::seed_from_u64(3);
    let k1: Vec<Key> = (0..2000).map(|_| rng.gen_range(0..500)).collect();
    let (r1, r2) = (tuples(&k1), tuples(&k1));
    let cond = JoinCondition::Band { beta: 1 };
    let cfg = OperatorConfig {
        j: 8,
        threads: 2,
        seed: 77,
        ..Default::default()
    };
    let a = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &cfg);
    let b = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &cfg);
    assert_eq!(a.join.output_total, b.join.output_total);
    assert_eq!(a.join.per_worker_input, b.join.per_worker_input);
    assert_eq!(a.join.network_tuples, b.join.network_tuples);
    assert_eq!(a.build.est_max_weight, b.build.est_max_weight);
}
