//! Integration tests for the paper's operational extensions: the §VI-E
//! adaptive CI fallback, Appendix A5 heterogeneous clusters, and the cost
//! model calibration loop of §VI-A.

use ewh::core::{CostModel, JoinCondition, JoinMatrix, Key, SchemeKind, Tuple};
use ewh::exec::{
    run_operator, run_operator_adaptive, EngineRuntime, FallbackPolicy, OperatorConfig, OutputWork,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One pool for the whole test binary (matching the runtime's "build one
/// per process" model); 4 workers regardless of host, mirroring the
/// thread teams the pre-runtime engine spawned.
fn test_rt() -> &'static EngineRuntime {
    static RT: std::sync::OnceLock<EngineRuntime> = std::sync::OnceLock::new();
    RT.get_or_init(|| EngineRuntime::new(4))
}

fn tuples(keys: &[Key]) -> Vec<Tuple> {
    keys.iter()
        .enumerate()
        .map(|(i, &k)| Tuple::new(k, i as u64))
        .collect()
}

#[test]
fn adaptive_operator_decision_boundary() {
    let cfg = OperatorConfig {
        j: 4,
        threads: 2,
        ..Default::default()
    };
    let policy = FallbackPolicy {
        rho_threshold: 50.0,
    };

    // rho ≈ n/8 per distinct key with 8 keys: n = 1000 → rho = 125 > 50.
    let mut rng = SmallRng::seed_from_u64(1);
    let hot: Vec<Key> = (0..1000).map(|_| rng.gen_range(0..8)).collect();
    let run = run_operator_adaptive(
        test_rt(),
        &tuples(&hot),
        &tuples(&hot),
        &JoinCondition::Equi,
        &cfg,
        &policy,
    );
    assert!(run.fell_back);
    assert_eq!(run.kind, SchemeKind::Ci);
    // The fallback must still be exact.
    let expect = JoinMatrix::new(hot.clone(), hot.clone(), JoinCondition::Equi).output_count();
    assert_eq!(run.join.output_total, expect);

    // A selective join stays on CSIO.
    let cold: Vec<Key> = (0..1000).collect();
    let run = run_operator_adaptive(
        test_rt(),
        &tuples(&cold),
        &tuples(&cold),
        &JoinCondition::Equi,
        &cfg,
        &policy,
    );
    assert!(!run.fell_back);
    assert_eq!(run.kind, SchemeKind::Csio);
}

#[test]
fn heterogeneous_cluster_beats_naive_assignment() {
    let n = 30_000;
    let mut rng = SmallRng::seed_from_u64(2);
    let k1: Vec<Key> = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
    let k2: Vec<Key> = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
    let cond = JoinCondition::Band { beta: 3 };
    let (r1, r2) = (tuples(&k1), tuples(&k2));
    let caps = vec![4.0, 1.0, 1.0];

    let naive = OperatorConfig {
        j: 3,
        threads: 2,
        ..Default::default()
    };
    let aware = OperatorConfig {
        j: 3,
        threads: 2,
        j_regions: Some(12),
        capacities: Some(caps.clone()),
        ..Default::default()
    };
    let a = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &naive);
    let b = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &aware);
    assert_eq!(a.join.output_total, b.join.output_total);

    let makespan = |run: &ewh::exec::OperatorRun| -> f64 {
        run.join
            .per_worker_input
            .iter()
            .zip(&run.join.per_worker_output)
            .zip(&caps)
            .map(|((&i, &o), &c)| naive.cost.weight(i, o) as f64 / c)
            .fold(0.0, f64::max)
    };
    assert!(
        makespan(&b) < makespan(&a),
        "capacity-aware {} !< naive {}",
        makespan(&b),
        makespan(&a)
    );
}

#[test]
fn cost_model_calibration_closes_the_loop() {
    // §VI-A: run benchmarks, regress wi/wo, feed the model back. Generate
    // observations from the engine's own per-worker loads with a known
    // synthetic time law, recover the rates.
    let n = 10_000;
    let mut rng = SmallRng::seed_from_u64(3);
    let k: Vec<Key> = (0..n).map(|_| rng.gen_range(0..n as i64 / 10)).collect();
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cfg = OperatorConfig {
        j: 8,
        threads: 2,
        ..Default::default()
    };
    let run = run_operator(
        test_rt(),
        SchemeKind::Csio,
        &r1,
        &r2,
        &JoinCondition::Equi,
        &cfg,
    );

    let (true_wi, true_wo) = (2.5e-6, 0.4e-6);
    let samples: Vec<(u64, u64, f64)> = run
        .join
        .per_worker_input
        .iter()
        .zip(&run.join.per_worker_output)
        .map(|(&i, &o)| (i, o, true_wi * i as f64 + true_wo * o as f64))
        .collect();
    let (wi, wo) = CostModel::calibrate(&samples).expect("regression solvable");
    assert!((wi - true_wi).abs() / true_wi < 1e-6);
    assert!((wo - true_wo).abs() / true_wo < 1e-6);
    // Normalized to wi = 1 the ratio matches the paper's style of reporting.
    let model = CostModel::from_rates(1.0, wo / wi);
    assert_eq!(model.wi_milli, 1000);
    assert_eq!(model.wo_milli, 160);
}

#[test]
fn count_and_touch_output_work_agree_on_counts() {
    let n = 5000;
    let mut rng = SmallRng::seed_from_u64(4);
    let k: Vec<Key> = (0..n).map(|_| rng.gen_range(0..500)).collect();
    let (r1, r2) = (tuples(&k), tuples(&k));
    let cond = JoinCondition::Band { beta: 1 };
    let base = OperatorConfig {
        j: 4,
        threads: 2,
        ..Default::default()
    };
    let touch = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &base);
    let count_cfg = OperatorConfig {
        output_work: OutputWork::Count,
        ..base
    };
    let count = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &count_cfg);
    assert_eq!(touch.join.output_total, count.join.output_total);
    assert_eq!(count.join.checksum, 0);
    assert_ne!(touch.join.checksum, 0);
}

#[test]
fn worst_case_overhead_stays_small_on_icd_joins() {
    // §VI-E: for input-dominated joins CSIO's overhead vs CSI is bounded
    // (paper: 1.04x; we allow 1.35x at this much smaller scale where fixed
    // sampling costs weigh relatively more).
    let n = 60_000;
    let k1: Vec<Key> = (0..n as i64).map(|i| 4 * i).collect();
    let mut rng = SmallRng::seed_from_u64(5);
    let k2: Vec<Key> = (0..n)
        .map(|_| 10 * rng.gen_range(0..n as i64 / 10))
        .collect();
    let cond = JoinCondition::Band { beta: 2 };
    let (r1, r2) = (tuples(&k1), tuples(&k2));
    let cfg = OperatorConfig {
        j: 16,
        threads: 2,
        ..Default::default()
    };
    let csi = run_operator(test_rt(), SchemeKind::Csi, &r1, &r2, &cond, &cfg);
    let csio = run_operator(test_rt(), SchemeKind::Csio, &r1, &r2, &cond, &cfg);
    let ratio = csio.total_sim_secs / csi.total_sim_secs;
    assert!(ratio < 1.35, "CSIO overhead {ratio:.2}x on an ICD join");
}
